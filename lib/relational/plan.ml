(* Compiled execution plans over columnar tables.

   A [Plan.t] is a small relational-algebra AST; [run] turns it into
   specialized kernels over {!Columnar} tables: selections are pushed
   into scans, hash-join build/probe is fused with projection (only the
   columns some ancestor needs are ever gathered), and the inner loops
   run on unboxed code arrays — no per-tuple column-name resolution and
   no [Value.t] variant dispatch.

   Semantics match the row-oriented evaluators exactly:
   - all equality tests are SQL three-valued: a selection keeps a row
     only when the predicate is {e definitely} true, and NULL never
     joins (kernels mask the NULL bitmap before comparing codes);
   - [Distinct], [Union] and [Diff] restore set semantics and return
     rows sorted by [Value.compare] (the [Ra.distinct] order);
   - join output order is nested-loop order (left-major, right
     ascending), like [Ra.natural_join].

   Counters: [scan.columnar] per scan executed, [join.fused] per fused
   hash-join/semijoin/antijoin kernel. *)

type op = Eq | Neq | Lt | Le | Gt | Ge
type operand = Col of string | Const of Value.t
type pred = { op : op; left : operand; right : operand }

type filter =
  | All of pred list  (* conjunction: every predicate definitely true *)
  | Any of pred list  (* disjunction: some predicate definitely true *)

type arg = Avar of string | Aconst of Value.t

type t =
  | Scan of { rel : string; args : arg list; tid : string option }
  | Table of Columnar.t
  | Filter of filter * t
  | Join of t * t
  | Semijoin of t * t
  | Antijoin of t * t
  | Project of string list * t
  | Distinct of t
  | Union of t * t
  | Diff of t * t

let c_scan_columnar = Obs.Counter.make "scan.columnar"
let c_join_fused = Obs.Counter.make "join.fused"

(* --- static output columns ------------------------------------------ *)

(* Unique variables of a scan in first-occurrence order, preceded by the
   tid column when requested. *)
let scan_cols ~tid args =
  let vars =
    List.fold_left
      (fun acc a ->
        match a with
        | Avar v when not (List.mem v acc) -> v :: acc
        | Avar _ | Aconst _ -> acc)
      [] args
    |> List.rev
  in
  match tid with None -> vars | Some name -> name :: vars

let rec cols = function
  | Scan { args; tid; _ } -> scan_cols ~tid args
  | Table tbl -> Array.to_list (Columnar.cols tbl)
  | Filter (_, p) | Distinct p -> cols p
  | Join (a, b) ->
      let ca = cols a in
      ca @ List.filter (fun c -> not (List.mem c ca)) (cols b)
  | Semijoin (a, _) | Antijoin (a, _) -> cols a
  | Project (names, _) -> names
  | Union (a, _) | Diff (a, _) -> cols a

(* --- small growable int buffer -------------------------------------- *)

module Ibuf = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = Array.make 64 0; n = 0 }

  let push b x =
    if b.n = Array.length b.a then begin
      let a' = Array.make (2 * b.n) 0 in
      Array.blit b.a 0 a' 0 b.n;
      b.a <- a'
    end;
    Array.unsafe_set b.a b.n x;
    b.n <- b.n + 1

  let contents b = Array.sub b.a 0 b.n
end

(* --- predicate compilation ------------------------------------------ *)

let eval_op op l r : Tvl.t =
  match op with
  | Eq -> Value.sql_eq l r
  | Neq -> Tvl.not_ (Value.sql_eq l r)
  | Lt -> Value.sql_cmp (fun c -> c < 0) l r
  | Le -> Value.sql_cmp (fun c -> c <= 0) l r
  | Gt -> Value.sql_cmp (fun c -> c > 0) l r
  | Ge -> Value.sql_cmp (fun c -> c >= 0) l r

(* Row predicate for "column = constant" being definitely true, with the
   representation dispatch resolved once. *)
let const_eq_matcher (c : Column.t) v =
  if Value.is_null v then fun _ -> false
  else
    match c.Column.data, v with
    | Column.Ints a, Value.Int x ->
        fun i -> (not (Column.is_null c i)) && Array.unsafe_get a i = x
    | Column.Reals a, Value.Real x ->
        fun i -> (not (Column.is_null c i)) && Float.equal (Array.unsafe_get a i) x
    | Column.Bools a, Value.Bool x ->
        fun i -> (not (Column.is_null c i)) && Array.unsafe_get a i = x
    | Column.Codes a, _ ->
        let code = Dict.intern v in
        fun i -> (not (Column.is_null c i)) && Array.unsafe_get a i = code
    | (Column.Ints _ | Column.Reals _ | Column.Bools _), _ ->
        (* Typed column vs a constant of another type: never definitely
           equal (sql_eq is False on non-null cells, Unknown on NULL). *)
        fun _ -> false

let const_neq_matcher (c : Column.t) v =
  if Value.is_null v then fun _ -> false
  else
    match c.Column.data, v with
    | Column.Ints a, Value.Int x ->
        fun i -> (not (Column.is_null c i)) && Array.unsafe_get a i <> x
    | Column.Reals a, Value.Real x ->
        fun i ->
          (not (Column.is_null c i))
          && not (Float.equal (Array.unsafe_get a i) x)
    | Column.Bools a, Value.Bool x ->
        fun i -> (not (Column.is_null c i)) && Array.unsafe_get a i <> x
    | Column.Codes a, _ ->
        let code = Dict.intern v in
        fun i -> (not (Column.is_null c i)) && Array.unsafe_get a i <> code
    | (Column.Ints _ | Column.Reals _ | Column.Bools _), _ ->
        (* Different type: definitely unequal wherever non-null. *)
        fun i -> not (Column.is_null c i)

(* Column-column equality/inequality over paired codes. *)
let col_eq_matcher keep_eq l r =
  let xl, xr = Column.pair_eq_codes l r in
  fun i ->
    (not (Column.is_null l i))
    && (not (Column.is_null r i))
    && (Array.unsafe_get xl i = Array.unsafe_get xr i) = keep_eq

let pred_matcher tbl (p : pred) =
  let column = function
    | Col name -> `C (Columnar.column tbl name)
    | Const v -> `V v
  in
  match p.op, column p.left, column p.right with
  | Eq, `C l, `C r -> col_eq_matcher true l r
  | Neq, `C l, `C r -> col_eq_matcher false l r
  | Eq, `C c, `V v | Eq, `V v, `C c -> const_eq_matcher c v
  | Neq, `C c, `V v | Neq, `V v, `C c -> const_neq_matcher c v
  | op, l, r ->
      (* Order comparisons (and const-const): generic three-valued
         evaluation through per-column decode closures. *)
      let getter = function
        | `C c -> Column.getter c
        | `V v -> fun _ -> v
      in
      let gl = getter l and gr = getter r in
      fun i -> Tvl.to_bool (eval_op op (gl i) (gr i))

let filter_matcher tbl = function
  | All ps ->
      let ms = List.map (pred_matcher tbl) ps in
      fun i -> List.for_all (fun m -> m i) ms
  | Any ps ->
      let ms = List.map (pred_matcher tbl) ps in
      fun i -> List.exists (fun m -> m i) ms

(* --- helpers --------------------------------------------------------- *)

let keep names needed =
  match needed with
  | None -> names
  | Some ns -> List.filter (fun c -> List.mem c ns) names

(* Drop columns outside [needed]; never touches rows. *)
let restrict_cols tbl needed =
  match needed with
  | None -> tbl
  | Some _ ->
      let names = keep (Array.to_list (Columnar.cols tbl)) needed in
      if List.length names = Array.length (Columnar.cols tbl) then tbl
      else
        Columnar.make (Array.of_list names)
          (Array.of_list (List.map (Columnar.column tbl) names))
          (Columnar.length tbl)

module Itbl = Hashtbl.Make (Int)

(* Open-addressing int→int hash table for the join/dedup inner loops:
   linear probing over two flat arrays, no boxing, no per-probe
   allocation (stdlib [Hashtbl.find_opt] allocates an option per
   probe).  Values must be ≥ 0; [vals.(slot) = -1] marks an empty
   slot. *)
module Iot = struct
  type t = { keys : int array; vals : int array; mask : int }

  let create n =
    let cap = ref 16 in
    while !cap < 2 * n do
      cap := !cap * 2
    done;
    { keys = Array.make !cap 0; vals = Array.make !cap (-1); mask = !cap - 1 }

  (* Fibonacci hashing on the upper bits keeps clustered keys spread. *)
  let slot t k = (k * 0x2545F4914F6CDD1D) lsr 8 land t.mask

  (* The value bound to [k], or -1. *)
  let find t k =
    let rec probe s =
      let v = Array.unsafe_get t.vals s in
      if v = -1 then -1
      else if Array.unsafe_get t.keys s = k then v
      else probe ((s + 1) land t.mask)
    in
    probe (slot t k)

  (* Binds [k] to [v ≥ 0], overwriting any previous binding. *)
  let replace t k v =
    let rec probe s =
      if Array.unsafe_get t.vals s = -1 then begin
        Array.unsafe_set t.keys s k;
        Array.unsafe_set t.vals s v
      end
      else if Array.unsafe_get t.keys s = k then Array.unsafe_set t.vals s v
      else probe ((s + 1) land t.mask)
    in
    probe (slot t k)
end

(* In-place quicksort (median-of-three, insertion sort below 16) for
   int arrays: [Array.sort Int.compare] pays a closure call per
   comparison, which would dominate the distinct kernel's final sort. *)
let sort_ints (a : int array) =
  let swap i j =
    let t = Array.unsafe_get a i in
    Array.unsafe_set a i (Array.unsafe_get a j);
    Array.unsafe_set a j t
  in
  let rec qsort lo hi =
    if hi - lo < 16 then
      for i = lo + 1 to hi do
        let x = Array.unsafe_get a i in
        let j = ref (i - 1) in
        while !j >= lo && Array.unsafe_get a !j > x do
          Array.unsafe_set a (!j + 1) (Array.unsafe_get a !j);
          decr j
        done;
        Array.unsafe_set a (!j + 1) x
      done
    else begin
      let mid = (lo + hi) / 2 in
      if Array.unsafe_get a mid < Array.unsafe_get a lo then swap mid lo;
      if Array.unsafe_get a hi < Array.unsafe_get a lo then swap hi lo;
      if Array.unsafe_get a hi < Array.unsafe_get a mid then swap hi mid;
      let pivot = Array.unsafe_get a mid in
      let i = ref lo and j = ref hi in
      while !i <= !j do
        while Array.unsafe_get a !i < pivot do
          incr i
        done;
        while Array.unsafe_get a !j > pivot do
          decr j
        done;
        if !i <= !j then begin
          swap !i !j;
          incr i;
          decr j
        end
      done;
      qsort lo !j;
      qsort !i hi
    end
  in
  let n = Array.length a in
  if n > 1 then qsort 0 (n - 1)

(* Value-order ranks for the cells of [c] selected by [idx]: an int per
   selected row such that rank comparison coincides with [Value.compare]
   on the decoded cells, paired with a radix bound (ranks all sit in
   [0, radix) when the bound is finite-ish).  Int columns rank by the
   raw value shifted to zero — no hashing, no boxing; other columns
   dense-rank their distinct codes, decoding each distinct value once.
   A [max_int] radix marks ranks usable for comparison but not for
   radix packing (sparse ints whose range overflows). *)
let value_ranks (c : Column.t) codes (idx : int array) =
  match c.Column.data with
  | Column.Ints a when not (Column.has_nulls c) ->
      if Array.length idx = 0 then ([||], 1)
      else begin
        let mn = ref max_int and mx = ref min_int in
        Array.iter
          (fun i ->
            let v = Array.unsafe_get a i in
            if v < !mn then mn := v;
            if v > !mx then mx := v)
          idx;
        let mn = !mn and range = !mx - !mn + 1 in
        if range > 0 then (Array.map (fun i -> a.(i) - mn) idx, range)
        else (Array.map (fun i -> a.(i)) idx, max_int)
      end
  | _ ->
      let n_idx = Array.length idx in
      let seen = Iot.create (max 16 n_idx) in
      let uniq = ref [] in
      Array.iter
        (fun i ->
          let code = codes.(i) in
          if Iot.find seen code = -1 then begin
            Iot.replace seen code 0;
            uniq := (code, Column.get c i) :: !uniq
          end)
        idx;
      let sorted = List.sort (fun (_, a) (_, b) -> Value.compare a b) !uniq in
      let rank = Iot.create (max 16 n_idx) in
      List.iteri (fun r (code, _) -> Iot.replace rank code r) sorted;
      (Array.map (fun i -> Iot.find rank codes.(i)) idx, List.length sorted)

(* Set semantics + the [Ra.distinct] (sorted) row order.

   Fast path: per column, codes are replaced by their value-order ranks
   and each row's rank vector is packed — together with the row's
   position as a tiebreak — into a single machine int whose natural
   order is the rank-lex (= [Value.compare] row) order.  One unboxed
   int sort then yields rows in final order with duplicates adjacent,
   so dedup is a linear scan: no per-row key allocation, no boxed
   comparisons.  When the rank-space product would overflow, fall back
   to hashed dedup plus a rank-vector comparison sort. *)
let distinct_table tbl =
  let n = Columnar.length tbl in
  let columns = Columnar.columns tbl in
  let keys = Array.map Column.eq_codes columns in
  let k = Array.length keys in
  if n = 0 then tbl
  else begin
    let idx_all = Array.init n Fun.id in
    let rr = Array.init k (fun j -> value_ranks columns.(j) keys.(j) idx_all) in
    let ranks = Array.map fst rr and radix = Array.map snd rr in
    let fits =
      Array.fold_left (fun acc m -> acc *. float_of_int m) (float_of_int n) radix
      < 1e18
    in
    if fits then begin
      let packed =
        Array.init n (fun i ->
            let rec go j acc =
              if j >= k then acc else go (j + 1) ((acc * radix.(j)) + (ranks.(j)).(i))
            in
            (go 0 0 * n) + i)
      in
      sort_ints packed;
      let sel = Ibuf.create () in
      let prev = ref (-1) in
      Array.iter
        (fun p ->
          let comp = p / n in
          if comp <> !prev then begin
            prev := comp;
            Ibuf.push sel (p mod n)
          end)
        packed;
      Columnar.select tbl (Ibuf.contents sel)
    end
    else begin
      let sel = Ibuf.create () in
      let seen : (int array, unit) Hashtbl.t = Hashtbl.create (max 16 n) in
      for i = 0 to n - 1 do
        let key = Array.init k (fun j -> (keys.(j)).(i)) in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          Ibuf.push sel i
        end
      done;
      let idx = Ibuf.contents sel in
      let order = Array.init (Array.length idx) Fun.id in
      let sub = Array.map (fun r -> Array.map (fun i -> r.(i)) idx) ranks in
      Array.sort
        (fun a b ->
          let rec go j =
            if j >= k then 0
            else
              match Int.compare (sub.(j)).(a) (sub.(j)).(b) with
              | 0 -> go (j + 1)
              | c -> c
          in
          go 0)
        order;
      Columnar.select tbl (Array.map (fun s -> idx.(s)) order)
    end
  end

(* --- scan ------------------------------------------------------------ *)

let exec_scan inst needed ~rel ~args ~tid =
  Obs.Counter.incr c_scan_columnar;
  let base = Instance.columnar inst ~rel in
  let base_cols = Columnar.columns base in
  let out_names = keep (scan_cols ~tid args) needed in
  let arity = Array.length (Columnar.cols base) - 1 in
  if List.length args <> arity then
    (* Arity-mismatched atom: matches nothing (the row evaluators reject
       every tuple the same way). *)
    Columnar.empty (Array.of_list out_names)
  else begin
    (* Fused per-row selection: constant arguments plus repeated
       variables, one pass. *)
    let first_pos : (string, int) Hashtbl.t = Hashtbl.create 8 in
    let matchers = ref [] in
    List.iteri
      (fun j a ->
        let c = base_cols.(j + 1) in
        match a with
        | Aconst v -> matchers := const_eq_matcher c v :: !matchers
        | Avar x -> (
            match Hashtbl.find_opt first_pos x with
            | None -> Hashtbl.add first_pos x (j + 1)
            | Some j0 -> matchers := col_eq_matcher true base_cols.(j0) c :: !matchers))
      args;
    let pick name =
      match tid with
      | Some t when String.equal t name -> 0
      | _ -> Hashtbl.find first_pos name
    in
    match !matchers with
    | [] ->
        (* No selection: share the base columns outright. *)
        Columnar.make
          (Array.of_list out_names)
          (Array.of_list (List.map (fun nm -> base_cols.(pick nm)) out_names))
          (Columnar.length base)
    | ms ->
        let sel = Ibuf.create () in
        let matcher i = List.for_all (fun m -> m i) ms in
        for i = 0 to Columnar.length base - 1 do
          if matcher i then Ibuf.push sel i
        done;
        let idx = Ibuf.contents sel in
        Columnar.make
          (Array.of_list out_names)
          (Array.of_list
             (List.map (fun nm -> Column.gather base_cols.(pick nm) idx) out_names))
          (Array.length idx)
  end

(* --- joins ----------------------------------------------------------- *)

(* Matching row-index pairs of [ta] ⋈ [tb] on [shared], in nested-loop
   order: [ta]-major, [tb] ascending within each [ta] row.  The hash
   table is chained through a [next] array built back-to-front, so each
   probe walks its matches in ascending [tb] order. *)
let match_pairs ta tb shared =
  let na = Columnar.length ta and nb = Columnar.length tb in
  let ia = Ibuf.create () and ib = Ibuf.create () in
  (match shared with
  | [] ->
      for i = 0 to na - 1 do
        for j = 0 to nb - 1 do
          Ibuf.push ia i;
          Ibuf.push ib j
        done
      done
  | [ key ] ->
      Obs.Counter.incr c_join_fused;
      let ca = Columnar.column ta key and cb = Columnar.column tb key in
      let xa, xb = Column.pair_eq_codes ca cb in
      let head = Iot.create (max 16 nb) in
      let next = Array.make (max 1 nb) (-1) in
      for j = nb - 1 downto 0 do
        if not (Column.is_null cb j) then begin
          let h = Iot.find head xb.(j) in
          if h >= 0 then next.(j) <- h;
          Iot.replace head xb.(j) j
        end
      done;
      for i = 0 to na - 1 do
        if not (Column.is_null ca i) then begin
          let j = ref (Iot.find head xa.(i)) in
          while !j >= 0 do
            Ibuf.push ia i;
            Ibuf.push ib !j;
            j := next.(!j)
          done
        end
      done
  | keys ->
      Obs.Counter.incr c_join_fused;
      let pairs =
        List.map
          (fun nm ->
            let ca = Columnar.column ta nm and cb = Columnar.column tb nm in
            (ca, cb, Column.pair_eq_codes ca cb))
          keys
      in
      let k = List.length pairs in
      let cas = Array.of_list (List.map (fun (c, _, _) -> c) pairs) in
      let cbs = Array.of_list (List.map (fun (_, c, _) -> c) pairs) in
      let xas = Array.of_list (List.map (fun (_, _, (x, _)) -> x) pairs) in
      let xbs = Array.of_list (List.map (fun (_, _, (_, x)) -> x) pairs) in
      let null_at cs i =
        let rec go j = j < k && (Column.is_null cs.(j) i || go (j + 1)) in
        go 0
      in
      let head : (int array, int) Hashtbl.t = Hashtbl.create (max 16 nb) in
      let next = Array.make (max 1 nb) (-1) in
      for j = nb - 1 downto 0 do
        if not (null_at cbs j) then begin
          let key = Array.init k (fun p -> (xbs.(p)).(j)) in
          (match Hashtbl.find_opt head key with
          | Some h -> next.(j) <- h
          | None -> ());
          Hashtbl.replace head key j
        end
      done;
      for i = 0 to na - 1 do
        if not (null_at cas i) then begin
          let key = Array.init k (fun p -> (xas.(p)).(i)) in
          match Hashtbl.find_opt head key with
          | None -> ()
          | Some h ->
              let j = ref h in
              while !j >= 0 do
                Ibuf.push ia i;
                Ibuf.push ib !j;
                j := next.(!j)
              done
        end
      done);
  (Ibuf.contents ia, Ibuf.contents ib)

(* Row indexes of [ta] that have (or lack) a [shared]-match in [tb].
   NULL keys never match: the semijoin drops them, the antijoin keeps
   them. *)
let presence_sel ~anti ta tb shared =
  Obs.Counter.incr c_join_fused;
  let nb = Columnar.length tb in
  match shared with
  | [ key ] ->
      (* Single-column membership: plain int hashing, no per-row key
         allocation. *)
      let ca = Columnar.column ta key and cb = Columnar.column tb key in
      let xa, xb = Column.pair_eq_codes ca cb in
      let present = Iot.create (max 16 nb) in
      for j = 0 to nb - 1 do
        if not (Column.is_null cb j) then Iot.replace present xb.(j) 0
      done;
      let sel = Ibuf.create () in
      for i = 0 to Columnar.length ta - 1 do
        let matched =
          (not (Column.is_null ca i)) && Iot.find present xa.(i) >= 0
        in
        if matched <> anti then Ibuf.push sel i
      done;
      Ibuf.contents sel
  | _ ->
  let pairs =
    List.map
      (fun nm ->
        let ca = Columnar.column ta nm and cb = Columnar.column tb nm in
        (ca, cb, Column.pair_eq_codes ca cb))
      shared
  in
  let k = List.length pairs in
  let cas = Array.of_list (List.map (fun (c, _, _) -> c) pairs) in
  let cbs = Array.of_list (List.map (fun (_, c, _) -> c) pairs) in
  let xas = Array.of_list (List.map (fun (_, _, (x, _)) -> x) pairs) in
  let xbs = Array.of_list (List.map (fun (_, _, (_, x)) -> x) pairs) in
  let null_at cs i =
    let rec go j = j < k && (Column.is_null cs.(j) i || go (j + 1)) in
    go 0
  in
  let present : (int array, unit) Hashtbl.t = Hashtbl.create (max 16 nb) in
  for j = 0 to nb - 1 do
    if not (null_at cbs j) then
      Hashtbl.replace present (Array.init k (fun p -> (xbs.(p)).(j))) ()
  done;
  let sel = Ibuf.create () in
  for i = 0 to Columnar.length ta - 1 do
    let matched =
      (not (null_at cas i))
      && Hashtbl.mem present (Array.init k (fun p -> (xas.(p)).(i)))
    in
    if matched <> anti then Ibuf.push sel i
  done;
  Ibuf.contents sel

(* --- execution ------------------------------------------------------- *)

let union_needed needed extra =
  match needed with None -> None | Some ns -> Some (extra @ ns)

let pred_cols ps =
  List.concat_map
    (fun p ->
      List.filter_map
        (function Col c -> Some c | Const _ -> None)
        [ p.left; p.right ])
    ps

(* Predicate matcher over a candidate join pair (i, j): operand columns
   are resolved to their side once, Eq/Neq compare pre-paired codes.
   Used by the fused filter-join kernel so filtered joins never
   materialize rows the predicate rejects. *)
let pair_pred_matcher ta tb (p : pred) =
  let a_names = Columnar.cols ta in
  let resolve = function
    | Col nm ->
        if Array.exists (String.equal nm) a_names then
          `A (Columnar.column ta nm)
        else `B (Columnar.column tb nm)
    | Const v -> `V v
  in
  let side_col = function `A c | `B c -> c | `V _ -> assert false in
  let side_idx op i j = match op with `A _ -> i | `B _ -> j | `V _ -> 0 in
  match p.op, resolve p.left, resolve p.right with
  | (Eq | Neq), ((`A _ | `B _) as l), ((`A _ | `B _) as r) ->
      let cl = side_col l and cr = side_col r in
      let xl, xr = Column.pair_eq_codes cl cr in
      let keep_eq = p.op = Eq in
      fun i j ->
        let il = side_idx l i j and ir = side_idx r i j in
        (not (Column.is_null cl il))
        && (not (Column.is_null cr ir))
        && (Array.unsafe_get xl il = Array.unsafe_get xr ir) = keep_eq
  | Eq, ((`A _ | `B _) as s), `V v | Eq, `V v, ((`A _ | `B _) as s) ->
      let m = const_eq_matcher (side_col s) v in
      fun i j -> m (side_idx s i j)
  | Neq, ((`A _ | `B _) as s), `V v | Neq, `V v, ((`A _ | `B _) as s) ->
      let m = const_neq_matcher (side_col s) v in
      fun i j -> m (side_idx s i j)
  | op, l, r ->
      let getter = function
        | (`A c | `B c) as s ->
            let g = Column.getter c in
            fun i j -> g (side_idx s i j)
        | `V v -> fun _ _ -> v
      in
      let gl = getter l and gr = getter r in
      fun i j -> Tvl.to_bool (eval_op op (gl i j) (gr i j))

let rec exec inst needed plan =
  match plan with
  | Scan { rel; args; tid } -> exec_scan inst needed ~rel ~args ~tid
  | Table tbl ->
      Obs.Counter.incr c_scan_columnar;
      restrict_cols tbl needed
  | Filter (f, Join (a, b)) ->
      (* Fused: evaluate the predicates on candidate pairs and gather
         only surviving rows — and only the columns an ancestor needs,
         which after a projection can be far fewer than the predicate
         touches. *)
      let shared =
        let ca = cols a in
        List.filter (fun c -> List.mem c ca) (cols b)
      in
      let fcols = pred_cols (match f with All ps | Any ps -> ps) in
      let child_needed = union_needed (union_needed needed fcols) shared in
      let ta = exec inst child_needed a in
      let tb = exec inst child_needed b in
      let ia, ib = match_pairs ta tb shared in
      let matcher =
        match f with
        | All ps ->
            let ms = List.map (pair_pred_matcher ta tb) ps in
            fun i j -> List.for_all (fun m -> m i j) ms
        | Any ps ->
            let ms = List.map (pair_pred_matcher ta tb) ps in
            fun i j -> List.exists (fun m -> m i j) ms
      in
      let sa = Ibuf.create () and sb = Ibuf.create () in
      Array.iteri
        (fun k i ->
          let j = ib.(k) in
          if matcher i j then begin
            Ibuf.push sa i;
            Ibuf.push sb j
          end)
        ia;
      let ia = Ibuf.contents sa and ib = Ibuf.contents sb in
      let a_names = Array.to_list (Columnar.cols ta) in
      let b_names =
        List.filter
          (fun c -> not (List.mem c shared))
          (Array.to_list (Columnar.cols tb))
      in
      let out_names = keep (a_names @ b_names) needed in
      let out_col nm =
        if List.mem nm a_names then Column.gather (Columnar.column ta nm) ia
        else Column.gather (Columnar.column tb nm) ib
      in
      Columnar.make
        (Array.of_list out_names)
        (Array.of_list (List.map out_col out_names))
        (Array.length ia)
  | Filter (f, p) ->
      let fcols = pred_cols (match f with All ps | Any ps -> ps) in
      let tbl = exec inst (union_needed needed fcols) p in
      let matcher = filter_matcher tbl f in
      let sel = Ibuf.create () in
      for i = 0 to Columnar.length tbl - 1 do
        if matcher i then Ibuf.push sel i
      done;
      (* Restrict before gathering: matcher columns were resolved above,
         so rows are only copied for the columns the parent keeps. *)
      Columnar.select (restrict_cols tbl needed) (Ibuf.contents sel)
  | Join (a, b) ->
      let shared =
        let ca = cols a in
        List.filter (fun c -> List.mem c ca) (cols b)
      in
      let ta = exec inst (union_needed needed shared) a in
      let tb = exec inst (union_needed needed shared) b in
      let ia, ib = match_pairs ta tb shared in
      let a_names = Array.to_list (Columnar.cols ta) in
      let b_names =
        List.filter
          (fun c -> not (List.mem c shared))
          (Array.to_list (Columnar.cols tb))
      in
      let out_names = keep (a_names @ b_names) needed in
      let out_col nm =
        if List.mem nm a_names then Column.gather (Columnar.column ta nm) ia
        else Column.gather (Columnar.column tb nm) ib
      in
      Columnar.make
        (Array.of_list out_names)
        (Array.of_list (List.map out_col out_names))
        (Array.length ia)
  | Semijoin (a, b) | Antijoin (a, b) ->
      let anti = match plan with Antijoin _ -> true | _ -> false in
      let shared =
        let ca = cols a in
        List.filter (fun c -> List.mem c ca) (cols b)
      in
      let ta = exec inst (union_needed needed shared) a in
      if shared = [] then
        (* Degenerate: the right side is a boolean gate. *)
        let tb = exec inst (Some []) b in
        let pass = (Columnar.length tb > 0) <> anti in
        restrict_cols
          (if pass then ta else Columnar.select ta [||])
          needed
      else
        let tb = exec inst (Some shared) b in
        let sel = presence_sel ~anti ta tb shared in
        Columnar.select (restrict_cols ta needed) sel
  | Project (names, p) ->
      let tbl = exec inst (Some names) p in
      let out_names = keep names needed in
      Columnar.make
        (Array.of_list out_names)
        (Array.of_list (List.map (Columnar.column tbl) out_names))
        (Columnar.length tbl)
  | Distinct p -> restrict_cols (distinct_table (exec inst None p)) needed
  | Union (a, b) ->
      let ta = exec inst None a and tb = exec inst None b in
      if Array.length (Columnar.cols ta) <> Array.length (Columnar.cols tb)
      then invalid_arg "Plan.Union: arity mismatch";
      let combined =
        Columnar.make (Columnar.cols ta)
          (Array.map2 Column.concat (Columnar.columns ta) (Columnar.columns tb))
          (Columnar.length ta + Columnar.length tb)
      in
      restrict_cols (distinct_table combined) needed
  | Diff (a, b) ->
      let ta = exec inst None a and tb = exec inst None b in
      let ka = Array.length (Columnar.cols ta)
      and kb = Array.length (Columnar.cols tb) in
      if ka <> kb then invalid_arg "Plan.Diff: arity mismatch";
      let codes =
        Array.init ka (fun j ->
            Column.pair_eq_codes (Columnar.columns ta).(j) (Columnar.columns tb).(j))
      in
      let sel = Ibuf.create () in
      (if ka = 1 then begin
         let xa, xb = codes.(0) in
         let bset = Itbl.create (max 16 (Columnar.length tb)) in
         for j = 0 to Columnar.length tb - 1 do
           Itbl.replace bset xb.(j) ()
         done;
         for i = 0 to Columnar.length ta - 1 do
           if not (Itbl.mem bset xa.(i)) then Ibuf.push sel i
         done
       end
       else begin
         let bset : (int array, unit) Hashtbl.t =
           Hashtbl.create (max 16 (Columnar.length tb))
         in
         for j = 0 to Columnar.length tb - 1 do
           Hashtbl.replace bset (Array.init ka (fun p -> (snd codes.(p)).(j))) ()
         done;
         for i = 0 to Columnar.length ta - 1 do
           if not (Hashtbl.mem bset (Array.init ka (fun p -> (fst codes.(p)).(i))))
           then Ibuf.push sel i
         done
       end);
      restrict_cols
        (distinct_table (Columnar.select ta (Ibuf.contents sel)))
        needed

let run ?needed inst plan = exec inst needed plan
