(** Database schemas: relation names with named attributes.

    Attribute positions are 0-based internally; the pretty-printers show the
    attribute names.  A schema is required to create instances and is used
    by constraints to resolve attribute names into positions. *)

type relation = { name : string; attributes : string array }

type t

val empty : t

val add_relation : t -> name:string -> attributes:string list -> t
(** Raises [Invalid_argument] if [name] is already declared or an attribute
    name is duplicated. *)

val relation : t -> string -> relation
(** Raises [Not_found] for an undeclared relation. *)

val mem : t -> string -> bool
val arity : t -> string -> int

val attribute_index : t -> rel:string -> attr:string -> int
(** Position of a named attribute.  Raises [Not_found]. *)

val relations : t -> relation list
(** In declaration order. *)

val of_list : (string * string list) list -> t
val pp : Format.formatter -> t -> unit
