type t = True | False | Unknown

let of_bool b = if b then True else False

let to_bool = function True -> true | False | Unknown -> false

let ( &&& ) a b =
  match a, b with
  | False, _ | _, False -> False
  | True, True -> True
  | Unknown, _ | _, Unknown -> Unknown

let ( ||| ) a b =
  match a, b with
  | True, _ | _, True -> True
  | False, False -> False
  | Unknown, _ | _, Unknown -> Unknown

let not_ = function True -> False | False -> True | Unknown -> Unknown

let equal (a : t) (b : t) = a = b

let pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Unknown -> Format.pp_print_string ppf "unknown"
