(** Relational database instances under set semantics.

    An instance is an immutable set of {!Fact.t}s over a {!Schema.t}, with
    each present fact addressed by a unique {!Tid.t} (facts and tids are in
    bijection, as in the paper's use of global tuple identifiers in Example
    3.5).  All mutation operations return new instances, which makes repair
    search — exploring many nearby consistent instances — cheap and safe. *)

type t

val create : Schema.t -> t
val schema : t -> Schema.t

val insert : t -> Fact.t -> t * Tid.t
(** Set semantics: inserting a fact that is already present is a no-op that
    returns the existing tid.  Raises [Invalid_argument] on an undeclared
    relation or an arity mismatch. *)

val insert_row : t -> rel:string -> Value.t list -> t * Tid.t
val add : t -> Fact.t -> t
(** [add] is [insert] discarding the tid. *)

val add_all : t -> Fact.t list -> t

val delete : t -> Tid.t -> t
(** No-op if the tid is absent. *)

val delete_fact : t -> Fact.t -> t

val update_cell : t -> Tid.Cell.t -> Value.t -> t
(** Attribute-level update (paper, Section 4.3): replace the value at
    1-based position [cell.pos] of the tuple addressed by [cell.tid].  The
    updated tuple keeps its tid unless the update makes it collide with an
    already-present fact, in which case the two merge (set semantics) and
    the updated tid disappears.  Raises [Not_found] if the tid is absent and
    [Invalid_argument] if the position is out of range. *)

val fact_of : t -> Tid.t -> Fact.t
(** Raises [Not_found]. *)

val find_fact : t -> Tid.t -> Fact.t option
val tid_of : t -> Fact.t -> Tid.t option
val mem_fact : t -> Fact.t -> bool
val mem_tid : t -> Tid.t -> bool

val tuples : t -> rel:string -> (Tid.t * Value.t array) list
(** All tuples of one relation, in tid order.  Empty list for a declared
    relation with no tuples; raises [Invalid_argument] on an undeclared
    relation. *)

val rows : t -> rel:string -> Value.t array list

val tid_column : string
(** Name of the synthetic leading column of {!columnar} views holding
    the tuple identifiers (as [Int]s): ["#tid"]. *)

val columnar : t -> rel:string -> Columnar.t
(** The relation's columnar snapshot: {!tid_column} followed by the
    schema attributes, rows in tid order (same contents and order as
    {!tuples}).  Built lazily, memoized per instance version, and
    invalidated per relation by [insert]/[delete]/[update_cell] — like
    the secondary indexes.  Raises [Invalid_argument] on an undeclared
    relation. *)

val facts : t -> Fact.Set.t
val fact_list : t -> Fact.t list
val tids : t -> Tid.Set.t
val size : t -> int
val cardinality : t -> rel:string -> int

val restrict : t -> Tid.Set.t -> t
(** Keep only the facts addressed by the given tids (used to build
    sub-instances, e.g. repairs obtained by deletions). *)

val of_facts : Schema.t -> Fact.t list -> t
val of_rows : Schema.t -> (string * Value.t list list) list -> t

val equal : t -> t -> bool
(** Equality of fact sets (schemas assumed compatible). *)

val equal_with_tids : t -> t -> bool
(** Equality of (tid, fact) maps: same facts under the same tids.  Strictly
    finer than {!equal} — instances with equal fact sets built in different
    insertion orders differ here.  This is the right verification for
    caches of tid-level structures (conflict graphs). *)

val subset : t -> t -> bool
val symmetric_difference : t -> t -> Fact.Set.t

val active_domain : t -> Value.t list
(** All distinct non-null values occurring in the instance, sorted. *)

val fold_facts : (Tid.t -> Fact.t -> 'a -> 'a) -> t -> 'a -> 'a
val pp : Format.formatter -> t -> unit

(** {1 Secondary indexes}

    Instances carry lazily built, memoized hash indexes: for a relation and
    a set of attribute positions, an index groups the relation's tids by the
    value tuple at those positions.  Indexes survive the persistent-update
    API — [insert]/[delete]/[update_cell] incrementally patch every index
    already built for the touched relation — so a long-lived instance keeps
    its indexes across repair-search churn.  All lookups are exactly
    equivalent to naive scans and preserve tid order. *)

val set_indexing : bool -> unit
(** Globally enable/disable index-backed lookups (default: enabled).  When
    disabled every probe falls back to a full scan, which is what the
    [join.nested] counter measures against [join.hash]. *)

val indexing_enabled : unit -> bool

val matching_tuples :
  t -> rel:string -> bound:(int * Value.t) list -> (Tid.t * Value.t array) list
(** The tuples of [rel] whose row SQL-equals [v] at 0-based position [p] for
    every [(p, v)] in [bound], in tid order.  [bound = []] is [tuples].
    NULL never SQL-equals anything, so a NULL bound value yields [].  Served
    from a (possibly freshly built) composite index when indexing is on;
    out-of-range positions fall back to a scan so arity-tolerant callers
    keep their semantics. *)

val probe :
  t ->
  rel:string ->
  bound:(int * Value.t) list ->
  [ `All of (Tid.t * Value.t array) list
  | `Hash of (Tid.t * Value.t array) list * (Tid.t * Value.t array) list ]
(** Three-valued-logic-aware lookup.  [`All tuples] means the caller must
    scan (no usable index, or a bound value is indexable but out of range).
    [`Hash (definite, null_candidates)] splits the relation into tuples that
    definitely match [bound] and tuples with a NULL at an indexed position —
    those can still evaluate to [Unknown] and must be re-checked by callers
    that distinguish Unknown from False. *)

val key_buckets :
  t -> rel:string -> positions:int list -> (Value.t list * Tid.t list) list
(** Group [rel]'s tids by their values at [positions] (0-based; NULL-free
    groups only).  One bucket per distinct key value, tids ascending — the
    bucketed key-violation detector walks buckets with ≥ 2 tids. *)

val digest : t -> int
(** Content digest (xor of per-(tid, fact) hashes mixed with the
    cardinality), maintained incrementally across updates.  Digest equality
    is a cache key, not a proof: verify with {!equal_with_tids} (or
    {!equal}, for fact-set-level consumers) before trusting it. *)
