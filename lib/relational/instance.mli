(** Relational database instances under set semantics.

    An instance is an immutable set of {!Fact.t}s over a {!Schema.t}, with
    each present fact addressed by a unique {!Tid.t} (facts and tids are in
    bijection, as in the paper's use of global tuple identifiers in Example
    3.5).  All mutation operations return new instances, which makes repair
    search — exploring many nearby consistent instances — cheap and safe. *)

type t

val create : Schema.t -> t
val schema : t -> Schema.t

val insert : t -> Fact.t -> t * Tid.t
(** Set semantics: inserting a fact that is already present is a no-op that
    returns the existing tid.  Raises [Invalid_argument] on an undeclared
    relation or an arity mismatch. *)

val insert_row : t -> rel:string -> Value.t list -> t * Tid.t
val add : t -> Fact.t -> t
(** [add] is [insert] discarding the tid. *)

val add_all : t -> Fact.t list -> t

val delete : t -> Tid.t -> t
(** No-op if the tid is absent. *)

val delete_fact : t -> Fact.t -> t

val update_cell : t -> Tid.Cell.t -> Value.t -> t
(** Attribute-level update (paper, Section 4.3): replace the value at
    1-based position [cell.pos] of the tuple addressed by [cell.tid].  The
    updated tuple keeps its tid unless the update makes it collide with an
    already-present fact, in which case the two merge (set semantics) and
    the updated tid disappears.  Raises [Not_found] if the tid is absent and
    [Invalid_argument] if the position is out of range. *)

val fact_of : t -> Tid.t -> Fact.t
(** Raises [Not_found]. *)

val find_fact : t -> Tid.t -> Fact.t option
val tid_of : t -> Fact.t -> Tid.t option
val mem_fact : t -> Fact.t -> bool
val mem_tid : t -> Tid.t -> bool

val tuples : t -> rel:string -> (Tid.t * Value.t array) list
(** All tuples of one relation, in tid order.  Empty list for a declared
    relation with no tuples; raises [Invalid_argument] on an undeclared
    relation. *)

val rows : t -> rel:string -> Value.t array list
val facts : t -> Fact.Set.t
val fact_list : t -> Fact.t list
val tids : t -> Tid.Set.t
val size : t -> int
val cardinality : t -> rel:string -> int

val restrict : t -> Tid.Set.t -> t
(** Keep only the facts addressed by the given tids (used to build
    sub-instances, e.g. repairs obtained by deletions). *)

val of_facts : Schema.t -> Fact.t list -> t
val of_rows : Schema.t -> (string * Value.t list list) list -> t

val equal : t -> t -> bool
(** Equality of fact sets (schemas assumed compatible). *)

val subset : t -> t -> bool
val symmetric_difference : t -> t -> Fact.Set.t

val active_domain : t -> Value.t list
(** All distinct non-null values occurring in the instance, sorted. *)

val fold_facts : (Tid.t -> Fact.t -> 'a -> 'a) -> t -> 'a -> 'a
val pp : Format.formatter -> t -> unit
