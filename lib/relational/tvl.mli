(** SQL three-valued logic (true / false / unknown).

    Used for query-time evaluation of comparisons in the presence of SQL
    nulls (paper, Sections 4.2–4.3): a condition filters a tuple in iff it
    evaluates to [True]. *)

type t = True | False | Unknown

val of_bool : bool -> t

val to_bool : t -> bool
(** [to_bool t] is [true] iff [t = True] — the SQL rule that only definite
    truth selects a tuple. *)

val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t
val not_ : t -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
