type t =
  | Int of int
  | Real of float
  | Str of string
  | Bool of bool
  | Null

let equal a b =
  match a, b with
  | Int x, Int y -> x = y
  | Real x, Real y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | Bool x, Bool y -> x = y
  | Null, Null -> true
  | (Int _ | Real _ | Str _ | Bool _ | Null), _ -> false

(* Order by constructor rank first so that values of different types are
   comparable in a stable way inside Sets and Maps. *)
let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Real _ -> 3
  | Str _ -> 4

let compare a b =
  match a, b with
  | Int x, Int y -> Int.compare x y
  | Real x, Real y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | Null, Null -> 0
  | _, _ -> Int.compare (rank a) (rank b)

let is_null = function Null -> true | Int _ | Real _ | Str _ | Bool _ -> false

let same_type a b = rank a = rank b

let sql_eq a b =
  if is_null a || is_null b then Tvl.Unknown
  else Tvl.of_bool (equal a b)

let sql_cmp test a b =
  if is_null a || is_null b then Tvl.Unknown
  else if not (same_type a b) then Tvl.Unknown
  else Tvl.of_bool (test (compare a b))

let int x = Int x
let str s = Str s
let real r = Real r
let bool b = Bool b

let pp ppf = function
  | Int x -> Format.pp_print_int ppf x
  | Real r -> Format.pp_print_float ppf r
  | Str s -> Format.pp_print_string ppf s
  | Bool b -> Format.pp_print_bool ppf b
  | Null -> Format.pp_print_string ppf "NULL"

let to_string v = Format.asprintf "%a" pp v

let hash = function
  | Int x -> Hashtbl.hash (2, x)
  | Real r -> Hashtbl.hash (3, r)
  | Str s -> Hashtbl.hash (4, s)
  | Bool b -> Hashtbl.hash (1, b)
  | Null -> Hashtbl.hash 0
