(* One typed column: a dense array of unboxed cells plus a NULL bitmap.

   The representation is picked per column when the column is built:
   homogeneous primitive columns keep their native arrays (no [Value.t]
   boxing on the scan loop), everything else — strings, mixed types —
   is dictionary-coded through the global {!Dict}.  NULL is carried
   out-of-band in the bitmap; the cell under a null slot is a dummy (0
   for primitives, the code of [Value.Null] for coded columns), so
   kernels must consult the bitmap before trusting a cell. *)

type data =
  | Ints of int array
  | Reals of float array
  | Bools of bool array
  | Codes of int array (* global Dict codes; null slots hold Null's code *)

type t = { data : data; nulls : Bytes.t }

(* --- NULL bitmap ---------------------------------------------------- *)

let bitmap n = Bytes.make ((n + 7) lsr 3) '\000'

let bit_set b i =
  let j = i lsr 3 in
  Bytes.unsafe_set b j
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get b j) lor (1 lsl (i land 7))))

let bit_get b i =
  Char.code (Bytes.unsafe_get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let is_null c i = bit_get c.nulls i

let has_nulls c =
  let n = Bytes.length c.nulls in
  let rec go i = i < n && (Bytes.unsafe_get c.nulls i <> '\000' || go (i + 1)) in
  go 0

let length c =
  match c.data with
  | Ints a -> Array.length a
  | Reals a -> Array.length a
  | Bools a -> Array.length a
  | Codes a -> Array.length a

(* --- construction --------------------------------------------------- *)

let of_ints a = { data = Ints (Array.copy a); nulls = bitmap (Array.length a) }

let of_values (vals : Value.t array) =
  let n = Array.length vals in
  let nulls = bitmap n in
  Array.iteri (fun i v -> if Value.is_null v then bit_set nulls i) vals;
  let all p =
    Array.for_all (fun v -> Value.is_null v || p v) vals
  in
  let data =
    if all (function Value.Int _ -> true | _ -> false) then
      Ints (Array.map (function Value.Int x -> x | _ -> 0) vals)
    else if all (function Value.Real _ -> true | _ -> false) then
      Reals (Array.map (function Value.Real x -> x | _ -> 0.) vals)
    else if all (function Value.Bool _ -> true | _ -> false) then
      Bools (Array.map (function Value.Bool x -> x | _ -> false) vals)
    else Codes (Array.map Dict.intern vals)
  in
  { data; nulls }

(* --- decoding ------------------------------------------------------- *)

(* A decode closure resolving the variant dispatch once per column, not
   once per cell. *)
let getter c =
  let nulls = c.nulls in
  match c.data with
  | Ints a ->
      fun i -> if bit_get nulls i then Value.Null else Value.Int a.(i)
  | Reals a ->
      fun i -> if bit_get nulls i then Value.Null else Value.Real a.(i)
  | Bools a ->
      fun i -> if bit_get nulls i then Value.Null else Value.Bool a.(i)
  | Codes a -> fun i -> Dict.value a.(i)

let get c i = getter c i

(* --- kernel helpers ------------------------------------------------- *)

let gather c (idx : int array) =
  let n = Array.length idx in
  let nulls = bitmap n in
  if has_nulls c then
    Array.iteri (fun k i -> if bit_get c.nulls i then bit_set nulls k) idx;
  let data =
    match c.data with
    | Ints a -> Ints (Array.map (fun i -> Array.unsafe_get a i) idx)
    | Reals a -> Reals (Array.map (fun i -> Array.unsafe_get a i) idx)
    | Bools a -> Bools (Array.map (fun i -> Array.unsafe_get a i) idx)
    | Codes a -> Codes (Array.map (fun i -> Array.unsafe_get a i) idx)
  in
  { data; nulls }

let concat a b =
  let na = length a and nb = length b in
  match a.data, b.data with
  | Ints x, Ints y | Codes x, Codes y ->
      let data =
        match a.data with
        | Ints _ -> Ints (Array.append x y)
        | _ -> Codes (Array.append x y)
      in
      let nulls = bitmap (na + nb) in
      for i = 0 to na - 1 do
        if bit_get a.nulls i then bit_set nulls i
      done;
      for i = 0 to nb - 1 do
        if bit_get b.nulls i then bit_set nulls (na + i)
      done;
      { data; nulls }
  | Reals x, Reals y ->
      let nulls = bitmap (na + nb) in
      for i = 0 to na - 1 do
        if bit_get a.nulls i then bit_set nulls i
      done;
      for i = 0 to nb - 1 do
        if bit_get b.nulls i then bit_set nulls (na + i)
      done;
      { data = Reals (Array.append x y); nulls }
  | Bools x, Bools y ->
      let nulls = bitmap (na + nb) in
      for i = 0 to na - 1 do
        if bit_get a.nulls i then bit_set nulls i
      done;
      for i = 0 to nb - 1 do
        if bit_get b.nulls i then bit_set nulls (na + i)
      done;
      { data = Bools (Array.append x y); nulls }
  | _ ->
      let ga = getter a and gb = getter b in
      of_values
        (Array.init (na + nb) (fun i ->
             if i < na then ga i else gb (i - na)))

(* Codes such that within this column, code equality coincides with
   [Value.equal] — including Null = Null (null slots share Null's
   dictionary code).  Primitive columns without nulls compare raw;
   anything else goes through the dictionary, whose codes are injective
   over values. *)
let eq_codes c =
  match c.data with
  | Codes a -> a
  | Ints a when not (has_nulls c) -> a
  | Bools a when not (has_nulls c) ->
      Array.map (fun b -> if b then 1 else 0) a
  | _ ->
      let g = getter c in
      Array.init (length c) (fun i -> Dict.intern (g i))

(* Same contract across two columns: codes comparable between [a] and
   [b].  Raw primitive arrays are only safe when both sides share the
   representation (and carry no nulls); otherwise both sides are
   re-expressed as global dictionary codes. *)
let pair_eq_codes a b =
  match a.data, b.data with
  | Codes x, Codes y -> (x, y)
  | Ints x, Ints y when (not (has_nulls a)) && not (has_nulls b) -> (x, y)
  | Bools x, Bools y when (not (has_nulls a)) && not (has_nulls b) ->
      let enc = Array.map (fun v -> if v then 1 else 0) in
      (enc x, enc y)
  | _ ->
      let enc c =
        match c.data with
        | Codes a -> a
        | _ ->
            let g = getter c in
            Array.init (length c) (fun i -> Dict.intern (g i))
      in
      (enc a, enc b)
