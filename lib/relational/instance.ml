module Smap = Map.Make (String)

(* ------------------------------------------------------------------ *)
(* Secondary indexes.

   Every instance carries a cache of lazily built secondary indexes: for a
   relation and a (sorted, duplicate-free) list of attribute positions, the
   index groups the relation's tids by the value tuple at those positions.
   Tuples with a NULL at any indexed position are kept aside in [inulls] —
   NULL never satisfies a join, but three-valued evaluation still needs to
   find those tuples to distinguish Unknown from False.

   The cache is per-version: the persistent update operations build the new
   instance with a cache whose already-built indexes are incrementally
   patched (one Map update per index), so a long-lived instance keeps its
   indexes across the repair search's insert/delete/update churn.  Building
   and memoizing mutate only the cache record, and always by replacing a
   whole persistent map behind a single mutable field — concurrent readers
   (parallel repair checking) see either the old or the new map, and a lost
   racing build merely repeats work. *)

module Vlmap = Map.Make (struct
  type t = Value.t list

  let compare = List.compare Value.compare
end)

module Ixkey = Map.Make (struct
  type t = string * int list

  let compare = Stdlib.compare
end)

type rel_index = { groups : Tid.Set.t Vlmap.t; inulls : Tid.Set.t }

type cache = {
  mutable idx : rel_index Ixkey.t;
  mutable raw_digest : int option; (* xor of per-fact hashes *)
  mutable columnar : Columnar.t Smap.t; (* per-relation columnar views *)
}

type t = {
  schema : Schema.t;
  by_tid : Fact.t Tid.Map.t;
  by_fact : Tid.t Fact.Map.t;
  by_rel : Tid.Set.t Smap.t;
  next : int;
  cache : cache;
}

let c_index_builds = Obs.Counter.make "index.builds"
let c_index_hits = Obs.Counter.make "index.hits"
let c_join_hash = Obs.Counter.make "join.hash"
let c_join_nested = Obs.Counter.make "join.nested"

let indexing = ref true
let set_indexing b = indexing := b
let indexing_enabled () = !indexing

let fresh_cache () = { idx = Ixkey.empty; raw_digest = None; columnar = Smap.empty }

(* Digest contribution of one (tid, fact) pair.  The tid matters: two
   instances with equal fact sets but different insertion orders address
   their facts by different tids, and consumers of the digest (the conflict
   graph cache) key tid-level structures on it. *)
let fact_digest tid (f : Fact.t) =
  Fact.hash f lxor (Tid.hash tid * 0x85ebca6b)

let values_at positions (row : Value.t array) =
  List.map (fun p -> row.(p)) positions

let index_add positions tid (f : Fact.t) ri =
  let vals = values_at positions f.row in
  if List.exists Value.is_null vals then
    { ri with inulls = Tid.Set.add tid ri.inulls }
  else
    let tids =
      match Vlmap.find_opt vals ri.groups with
      | Some s -> Tid.Set.add tid s
      | None -> Tid.Set.singleton tid
    in
    { ri with groups = Vlmap.add vals tids ri.groups }

let index_remove positions tid (f : Fact.t) ri =
  let vals = values_at positions f.row in
  if List.exists Value.is_null vals then
    { ri with inulls = Tid.Set.remove tid ri.inulls }
  else
    match Vlmap.find_opt vals ri.groups with
    | None -> ri
    | Some s ->
        let s = Tid.Set.remove tid s in
        {
          ri with
          groups =
            (if Tid.Set.is_empty s then Vlmap.remove vals ri.groups
             else Vlmap.add vals s ri.groups);
        }

(* The cache of the instance obtained by inserting/removing one fact: every
   already-built index of that fact's relation is patched; the rest are
   shared as-is. *)
let cache_with patch cache tid (f : Fact.t) =
  {
    idx =
      Ixkey.mapi
        (fun (rel, positions) ri ->
          if String.equal rel f.rel then patch positions tid f ri else ri)
        cache.idx;
    raw_digest = Option.map (fun d -> d lxor fact_digest tid f) cache.raw_digest;
    (* The touched relation's columnar view is stale; the others carry
       over (they are immutable snapshots, safe to share). *)
    columnar = Smap.remove f.rel cache.columnar;
  }

let cache_after_insert cache tid f = cache_with index_add cache tid f
let cache_after_delete cache tid f = cache_with index_remove cache tid f

let create schema =
  {
    schema;
    by_tid = Tid.Map.empty;
    by_fact = Fact.Map.empty;
    by_rel = Smap.empty;
    next = 1;
    cache = fresh_cache ();
  }

let schema t = t.schema

let check_fact t (f : Fact.t) =
  if not (Schema.mem t.schema f.rel) then
    invalid_arg (Printf.sprintf "Instance: undeclared relation %s" f.rel);
  let expected = Schema.arity t.schema f.rel in
  if Fact.arity f <> expected then
    invalid_arg
      (Printf.sprintf "Instance: %s expects arity %d, got %d" f.rel expected
         (Fact.arity f))

let insert t (f : Fact.t) =
  check_fact t f;
  match Fact.Map.find_opt f t.by_fact with
  | Some tid -> t, tid
  | None ->
      let tid = Tid.of_int t.next in
      let rel_tids =
        match Smap.find_opt f.rel t.by_rel with
        | Some s -> Tid.Set.add tid s
        | None -> Tid.Set.singleton tid
      in
      ( {
          t with
          by_tid = Tid.Map.add tid f t.by_tid;
          by_fact = Fact.Map.add f tid t.by_fact;
          by_rel = Smap.add f.rel rel_tids t.by_rel;
          next = t.next + 1;
          cache = cache_after_insert t.cache tid f;
        },
        tid )

let insert_row t ~rel values = insert t (Fact.make rel values)
let add t f = fst (insert t f)
let add_all t fs = List.fold_left add t fs

let delete t tid =
  match Tid.Map.find_opt tid t.by_tid with
  | None -> t
  | Some f ->
      let rel_tids = Tid.Set.remove tid (Smap.find f.rel t.by_rel) in
      {
        t with
        by_tid = Tid.Map.remove tid t.by_tid;
        by_fact = Fact.Map.remove f t.by_fact;
        by_rel =
          (if Tid.Set.is_empty rel_tids then Smap.remove f.rel t.by_rel
           else Smap.add f.rel rel_tids t.by_rel);
        cache = cache_after_delete t.cache tid f;
      }

let tid_of t f = Fact.Map.find_opt f t.by_fact

let delete_fact t f =
  match tid_of t f with Some tid -> delete t tid | None -> t

let fact_of t tid = Tid.Map.find tid t.by_tid
let find_fact t tid = Tid.Map.find_opt tid t.by_tid
let mem_fact t f = Fact.Map.mem f t.by_fact
let mem_tid t tid = Tid.Map.mem tid t.by_tid

let update_cell t (cell : Tid.Cell.t) v =
  let f = fact_of t cell.tid in
  let n = Array.length f.row in
  if cell.pos < 1 || cell.pos > n then
    invalid_arg
      (Printf.sprintf "Instance.update_cell: position %d out of 1..%d"
         cell.pos n);
  let row = Array.copy f.row in
  row.(cell.pos - 1) <- v;
  let f' = { f with row } in
  let t = delete t cell.tid in
  if mem_fact t f' then t
  else
    (* Re-insert under the original tid so that change-sets keep referring
       to stable identifiers across attribute updates. *)
    let rel_tids =
      match Smap.find_opt f'.rel t.by_rel with
      | Some s -> Tid.Set.add cell.tid s
      | None -> Tid.Set.singleton cell.tid
    in
    {
      t with
      by_tid = Tid.Map.add cell.tid f' t.by_tid;
      by_fact = Fact.Map.add f' cell.tid t.by_fact;
      by_rel = Smap.add f'.rel rel_tids t.by_rel;
      cache = cache_after_insert t.cache cell.tid f';
    }

let tuples t ~rel =
  if not (Schema.mem t.schema rel) then
    invalid_arg (Printf.sprintf "Instance.tuples: undeclared relation %s" rel);
  match Smap.find_opt rel t.by_rel with
  | None -> []
  | Some tids ->
      Tid.Set.fold
        (fun tid acc -> (tid, (fact_of t tid).row) :: acc)
        tids []
      |> List.rev

let rows t ~rel = List.map snd (tuples t ~rel)

(* ------------------------------------------------------------------ *)
(* Columnar views.

   Like the secondary indexes, a relation's columnar snapshot is built
   lazily, memoized in the per-version cache, and invalidated (per
   relation) by the persistent update operations via [cache_with].
   The memo follows the same benign-race discipline: the whole map is
   replaced behind one mutable field, so concurrent readers see either
   the old or the new map and a lost racing build merely repeats work.

   Every view carries the synthetic leading column [tid_column] holding
   the tuple identifiers; plans that do not need tids simply never ask
   for that column. *)

let tid_column = "#tid"

let columnar t ~rel =
  match Smap.find_opt rel t.cache.columnar with
  | Some c -> c
  | None ->
      let tups = Array.of_list (tuples t ~rel) in
      let attrs = (Schema.relation t.schema rel).Schema.attributes in
      let n = Array.length tups in
      let tid_col =
        Column.of_ints (Array.map (fun (tid, _) -> Tid.to_int tid) tups)
      in
      let data_cols =
        Array.init (Array.length attrs) (fun j ->
            Column.of_values (Array.init n (fun i -> (snd tups.(i)).(j))))
      in
      let c =
        Columnar.make
          (Array.append [| tid_column |] (Array.copy attrs))
          (Array.append [| tid_col |] data_cols)
          n
      in
      t.cache.columnar <- Smap.add rel c t.cache.columnar;
      c

(* Find (or build and memoize) the index of [rel] over [positions], which
   must be sorted, duplicate-free and within the relation's arity. *)
let rel_index t ~rel ~positions =
  let key = (rel, positions) in
  match Ixkey.find_opt key t.cache.idx with
  | Some ri ->
      Obs.Counter.incr c_index_hits;
      ri
  | None ->
      Obs.Counter.incr c_index_builds;
      let ri =
        List.fold_left
          (fun ri (tid, row) ->
            index_add positions tid { Fact.rel; row } ri)
          { groups = Vlmap.empty; inulls = Tid.Set.empty }
          (tuples t ~rel)
      in
      t.cache.idx <- Ixkey.add key ri t.cache.idx;
      ri

let tuples_of_tids t tids =
  Tid.Set.fold (fun tid acc -> (tid, (fact_of t tid).row) :: acc) tids []
  |> List.rev

let normalize_bound bound =
  let bound =
    List.sort_uniq
      (fun (p, v) (p', v') ->
        match Int.compare p p' with 0 -> Value.compare v v' | c -> c)
      bound
  in
  let positions = List.map fst bound in
  if List.length (List.sort_uniq Int.compare positions) <> List.length positions
  then None (* same position constrained to two different values *)
  else Some (positions, List.map snd bound)

let probe t ~rel ~bound =
  match bound with
  | [] -> `All (tuples t ~rel)
  | _ -> (
      let arity = if Schema.mem t.schema rel then Schema.arity t.schema rel else 0 in
      if List.exists (fun (p, _) -> p < 0 || p >= arity) bound then
        (* Out-of-range constraint (arity-mismatched atom): let the caller's
           own row matching reject everything. *)
        `All (tuples t ~rel)
      else if not !indexing then begin
        Obs.Counter.incr c_join_nested;
        `All (tuples t ~rel)
      end
      else
        match normalize_bound bound with
        | None -> `Hash ([], [])
        | Some (positions, vals) ->
            let ri = rel_index t ~rel ~positions in
            Obs.Counter.incr c_join_hash;
            let definite =
              if List.exists Value.is_null vals then []
              else
                match Vlmap.find_opt vals ri.groups with
                | None -> []
                | Some tids -> tuples_of_tids t tids
            in
            `Hash (definite, tuples_of_tids t ri.inulls))

let matching_tuples t ~rel ~bound =
  if List.exists (fun (_, v) -> Value.is_null v) bound then []
  else
    match probe t ~rel ~bound with
    | `Hash (definite, _) -> definite
    | `All tups ->
        if bound = [] then tups
        else
          List.filter
            (fun (_, row) ->
              List.for_all
                (fun (p, v) ->
                  p < Array.length row && Tvl.to_bool (Value.sql_eq row.(p) v))
                bound)
            tups

let key_buckets t ~rel ~positions =
  let positions = List.sort_uniq Int.compare positions in
  let ri = rel_index t ~rel ~positions in
  Vlmap.fold
    (fun vals tids acc -> (vals, Tid.Set.elements tids) :: acc)
    ri.groups []
  |> List.rev

let facts t =
  Tid.Map.fold (fun _ f acc -> Fact.Set.add f acc) t.by_tid Fact.Set.empty

let fact_list t = Tid.Map.fold (fun _ f acc -> f :: acc) t.by_tid [] |> List.rev
let tids t = Tid.Map.fold (fun tid _ acc -> Tid.Set.add tid acc) t.by_tid Tid.Set.empty
let size t = Tid.Map.cardinal t.by_tid

let cardinality t ~rel =
  match Smap.find_opt rel t.by_rel with
  | None -> 0
  | Some s -> Tid.Set.cardinal s

let restrict t keep =
  Tid.Map.fold
    (fun tid _ acc -> if Tid.Set.mem tid keep then acc else delete acc tid)
    t.by_tid t

let of_facts schema fs = add_all (create schema) fs

let of_rows schema rels =
  List.fold_left
    (fun acc (rel, rws) ->
      List.fold_left (fun acc values -> add acc (Fact.make rel values)) acc rws)
    (create schema) rels

(* Order-independent content digest: xor of per-fact hashes (maintained
   incrementally across updates), mixed with the cardinality.  Collisions
   are possible, so digest equality is a cache key, not a proof of
   instance equality — verify with [equal] before trusting it. *)
let digest t =
  let raw =
    match t.cache.raw_digest with
    | Some d -> d
    | None ->
        let d =
          Tid.Map.fold (fun tid f acc -> acc lxor fact_digest tid f) t.by_tid 0
        in
        t.cache.raw_digest <- Some d;
        d
  in
  raw lxor (size t * 0x9e3779b1)

let equal a b = Fact.Set.equal (facts a) (facts b)
let equal_with_tids a b = Tid.Map.equal Fact.equal a.by_tid b.by_tid
let subset a b = Fact.Set.subset (facts a) (facts b)
let symmetric_difference a b = Fact.symmetric_difference (facts a) (facts b)

module Vset = Set.Make (Value)

let active_domain t =
  let dom =
    Tid.Map.fold
      (fun _ (f : Fact.t) acc ->
        Array.fold_left
          (fun acc v -> if Value.is_null v then acc else Vset.add v acc)
          acc f.row)
      t.by_tid Vset.empty
  in
  Vset.elements dom

let fold_facts f t init = Tid.Map.fold f t.by_tid init

let pp ppf t =
  let pp_one ppf (tid, f) = Format.fprintf ppf "%a: %a" Tid.pp tid Fact.pp f in
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_seq ~pp_sep:Format.pp_print_cut pp_one)
    (Tid.Map.to_seq t.by_tid)
