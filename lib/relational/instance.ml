module Smap = Map.Make (String)

type t = {
  schema : Schema.t;
  by_tid : Fact.t Tid.Map.t;
  by_fact : Tid.t Fact.Map.t;
  by_rel : Tid.Set.t Smap.t;
  next : int;
}

let create schema = { schema; by_tid = Tid.Map.empty; by_fact = Fact.Map.empty; by_rel = Smap.empty; next = 1 }

let schema t = t.schema

let check_fact t (f : Fact.t) =
  if not (Schema.mem t.schema f.rel) then
    invalid_arg (Printf.sprintf "Instance: undeclared relation %s" f.rel);
  let expected = Schema.arity t.schema f.rel in
  if Fact.arity f <> expected then
    invalid_arg
      (Printf.sprintf "Instance: %s expects arity %d, got %d" f.rel expected
         (Fact.arity f))

let insert t (f : Fact.t) =
  check_fact t f;
  match Fact.Map.find_opt f t.by_fact with
  | Some tid -> t, tid
  | None ->
      let tid = Tid.of_int t.next in
      let rel_tids =
        match Smap.find_opt f.rel t.by_rel with
        | Some s -> Tid.Set.add tid s
        | None -> Tid.Set.singleton tid
      in
      ( {
          t with
          by_tid = Tid.Map.add tid f t.by_tid;
          by_fact = Fact.Map.add f tid t.by_fact;
          by_rel = Smap.add f.rel rel_tids t.by_rel;
          next = t.next + 1;
        },
        tid )

let insert_row t ~rel values = insert t (Fact.make rel values)
let add t f = fst (insert t f)
let add_all t fs = List.fold_left add t fs

let delete t tid =
  match Tid.Map.find_opt tid t.by_tid with
  | None -> t
  | Some f ->
      let rel_tids = Tid.Set.remove tid (Smap.find f.rel t.by_rel) in
      {
        t with
        by_tid = Tid.Map.remove tid t.by_tid;
        by_fact = Fact.Map.remove f t.by_fact;
        by_rel =
          (if Tid.Set.is_empty rel_tids then Smap.remove f.rel t.by_rel
           else Smap.add f.rel rel_tids t.by_rel);
      }

let tid_of t f = Fact.Map.find_opt f t.by_fact

let delete_fact t f =
  match tid_of t f with Some tid -> delete t tid | None -> t

let fact_of t tid = Tid.Map.find tid t.by_tid
let find_fact t tid = Tid.Map.find_opt tid t.by_tid
let mem_fact t f = Fact.Map.mem f t.by_fact
let mem_tid t tid = Tid.Map.mem tid t.by_tid

let update_cell t (cell : Tid.Cell.t) v =
  let f = fact_of t cell.tid in
  let n = Array.length f.row in
  if cell.pos < 1 || cell.pos > n then
    invalid_arg
      (Printf.sprintf "Instance.update_cell: position %d out of 1..%d"
         cell.pos n);
  let row = Array.copy f.row in
  row.(cell.pos - 1) <- v;
  let f' = { f with row } in
  let t = delete t cell.tid in
  if mem_fact t f' then t
  else
    (* Re-insert under the original tid so that change-sets keep referring
       to stable identifiers across attribute updates. *)
    let rel_tids =
      match Smap.find_opt f'.rel t.by_rel with
      | Some s -> Tid.Set.add cell.tid s
      | None -> Tid.Set.singleton cell.tid
    in
    {
      t with
      by_tid = Tid.Map.add cell.tid f' t.by_tid;
      by_fact = Fact.Map.add f' cell.tid t.by_fact;
      by_rel = Smap.add f'.rel rel_tids t.by_rel;
    }

let tuples t ~rel =
  if not (Schema.mem t.schema rel) then
    invalid_arg (Printf.sprintf "Instance.tuples: undeclared relation %s" rel);
  match Smap.find_opt rel t.by_rel with
  | None -> []
  | Some tids ->
      Tid.Set.fold
        (fun tid acc -> (tid, (fact_of t tid).row) :: acc)
        tids []
      |> List.rev

let rows t ~rel = List.map snd (tuples t ~rel)

let facts t =
  Tid.Map.fold (fun _ f acc -> Fact.Set.add f acc) t.by_tid Fact.Set.empty

let fact_list t = Tid.Map.fold (fun _ f acc -> f :: acc) t.by_tid [] |> List.rev
let tids t = Tid.Map.fold (fun tid _ acc -> Tid.Set.add tid acc) t.by_tid Tid.Set.empty
let size t = Tid.Map.cardinal t.by_tid

let cardinality t ~rel =
  match Smap.find_opt rel t.by_rel with
  | None -> 0
  | Some s -> Tid.Set.cardinal s

let restrict t keep =
  Tid.Map.fold
    (fun tid _ acc -> if Tid.Set.mem tid keep then acc else delete acc tid)
    t.by_tid t

let of_facts schema fs = add_all (create schema) fs

let of_rows schema rels =
  List.fold_left
    (fun acc (rel, rws) ->
      List.fold_left (fun acc values -> add acc (Fact.make rel values)) acc rws)
    (create schema) rels

let equal a b = Fact.Set.equal (facts a) (facts b)
let subset a b = Fact.Set.subset (facts a) (facts b)
let symmetric_difference a b = Fact.symmetric_difference (facts a) (facts b)

module Vset = Set.Make (Value)

let active_domain t =
  let dom =
    Tid.Map.fold
      (fun _ (f : Fact.t) acc ->
        Array.fold_left
          (fun acc v -> if Value.is_null v then acc else Vset.add v acc)
          acc f.row)
      t.by_tid Vset.empty
  in
  Vset.elements dom

let fold_facts f t init = Tid.Map.fold f t.by_tid init

let pp ppf t =
  let pp_one ppf (tid, f) = Format.fprintf ppf "%a: %a" Tid.pp tid Fact.pp f in
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_seq ~pp_sep:Format.pp_print_cut pp_one)
    (Tid.Map.to_seq t.by_tid)
