(** Compiled execution plans over columnar tables.

    A {!t} is a relational-algebra AST; {!run} executes it with
    specialized kernels over {!Columnar} storage: selection fused into
    scans, hash-join build/probe fused with projection (needed-columns
    analysis gathers only what some ancestor consumes), inner loops on
    unboxed code arrays with no per-tuple column-name resolution.

    Semantics match the row evaluators exactly: predicates keep a row
    only when definitely true under three-valued logic, NULL never
    joins (but [Antijoin] keeps NULL-keyed left rows — a NULL key
    refutes nothing), and [Distinct]/[Union]/[Diff] restore set
    semantics in the sorted [Ra.distinct] row order.  Join output order
    is nested-loop order (left-major, right ascending).

    Counters: [scan.columnar] per scan, [join.fused] per fused
    hash-join/semijoin/antijoin kernel. *)

type op = Eq | Neq | Lt | Le | Gt | Ge
type operand = Col of string | Const of Value.t
type pred = { op : op; left : operand; right : operand }

type filter =
  | All of pred list  (** conjunction: every predicate definitely true *)
  | Any of pred list  (** disjunction: some predicate definitely true *)

type arg = Avar of string | Aconst of Value.t

type t =
  | Scan of { rel : string; args : arg list; tid : string option }
      (** One base relation via {!Instance.columnar}, with constant and
          repeated-variable selections fused into the scan.  Output
          columns: [tid] (if any), then the distinct variables in
          first-occurrence order.  An arity-mismatched argument list
          yields the empty table. *)
  | Table of Columnar.t  (** A materialized intermediate. *)
  | Filter of filter * t
  | Join of t * t
      (** Natural join on all shared column names (cartesian product
          when none are shared). *)
  | Semijoin of t * t
  | Antijoin of t * t
      (** Left rows with no join partner; NULL-keyed left rows are
          kept. *)
  | Project of string list * t  (** No dedup, like [Ra.project]. *)
  | Distinct of t
  | Union of t * t  (** Positional, set semantics, like [Ra.union]. *)
  | Diff of t * t
      (** Positional set difference (with distinct), like
          [Ra.difference]; NULL compares equal to NULL here, matching
          [Value.compare]. *)

val cols : t -> string list
(** Static output columns of a plan, in output order. *)

val run : ?needed:string list -> Instance.t -> t -> Columnar.t
(** Execute.  [needed] restricts the output to (the plan-order subset
    of) those columns and lets every kernel skip gathering the rest.
    Raises [Invalid_argument] (with the available columns listed) when
    a referenced column does not exist. *)

val eval_op : op -> Value.t -> Value.t -> Tvl.t
(** The three-valued comparison semantics the compiled predicates
    implement — [Logic.Cmp.eval]'s value-level core. *)
