(** CSV import/export for instances.

    Values are rendered plainly; strings containing commas, quotes or
    newlines are double-quoted with quote doubling.  On import, unquoted
    tokens are typed heuristically: all-digit integers, float-looking
    reals, empty fields as NULL, everything else (and all quoted fields)
    as strings. *)

val to_csv : ?header:bool -> Instance.t -> rel:string -> string
(** One relation as CSV, with an attribute-name header by default. *)

val load_csv :
  ?header:bool -> Instance.t -> rel:string -> string -> Instance.t
(** Append CSV rows to a relation.  [header] (default true) skips the first
    line.  Raises [Invalid_argument] on arity mismatch or an unterminated
    quote, with the offending line number. *)
