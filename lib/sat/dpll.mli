(** A DPLL SAT solver with unit propagation, model enumeration and
    branch-and-bound cardinality minimization.

    This is the search substrate behind stable-model checking (lib/asp),
    minimum-cardinality repairs and SAT-based hitting sets (lib/repairs).
    It favours simplicity and correctness over raw speed: propagation scans
    occurrence lists, and branching picks the first unassigned variable of
    the shortest unsatisfied clause. *)

type model = bool array
(** Indexed by variable number; index 0 is unused. *)

val solve : ?assumptions:int list -> Cnf.t -> model option
(** One satisfying assignment, or [None] if unsatisfiable (including when
    the assumptions conflict). *)

val satisfiable : ?assumptions:int list -> Cnf.t -> bool

val enumerate :
  ?assumptions:int list -> ?limit:int -> ?project:int list -> Cnf.t ->
  model list
(** All models, deduplicated on the projection variables (all variables by
    default).  [limit] caps the number of models returned. *)

val count : ?assumptions:int list -> ?project:int list -> Cnf.t -> int

val minimize_weighted :
  ?assumptions:int list -> soft:(int * float) list -> Cnf.t ->
  (float * model) option
(** A model minimizing the total weight of the soft variables assigned
    true.  Weights must be non-negative. *)

val minimize :
  ?assumptions:int list -> soft:int list -> Cnf.t -> (int * model) option
(** A model minimizing the number of [soft] variables assigned true,
    together with that number.  Branch and bound: soft variables are
    branched false-first and partial assignments whose soft cost already
    reaches the incumbent are pruned. *)

val model_true_vars : model -> int list
