(** A DPLL SAT solver with unit propagation, model enumeration and
    branch-and-bound cardinality minimization.

    This is the search substrate behind stable-model checking (lib/asp),
    minimum-cardinality repairs and SAT-based hitting sets (lib/repairs).
    It favours simplicity and correctness over raw speed: propagation scans
    occurrence lists, and branching picks the first unassigned variable of
    the shortest unsatisfied clause. *)

type model = bool array
(** Indexed by variable number; index 0 is unused. *)

val solve : ?assumptions:int list -> Cnf.t -> model option
(** One satisfying assignment, or [None] if unsatisfiable (including when
    the assumptions conflict). *)

val satisfiable : ?assumptions:int list -> Cnf.t -> bool

val enumerate :
  ?assumptions:int list -> ?limit:int -> ?project:int list -> Cnf.t ->
  model list
(** All models, deduplicated on the projection variables (all variables by
    default).  [limit] caps the number of models returned. *)

val count : ?assumptions:int list -> ?project:int list -> Cnf.t -> int

val minimize_weighted :
  ?assumptions:int list -> soft:(int * float) list -> Cnf.t ->
  (float * model) option
(** A model minimizing the total weight of the soft variables assigned
    true.  Weights must be non-negative. *)

val minimize :
  ?assumptions:int list -> soft:int list -> Cnf.t -> (int * model) option
(** A model minimizing the number of [soft] variables assigned true,
    together with that number.  Branch and bound: soft variables are
    branched false-first and partial assignments whose soft cost already
    reaches the incumbent are pruned. *)

val model_true_vars : model -> int list

(** Incremental solving: a persistent solver that accepts clauses and
    fresh variables between calls and solves under per-call assumption
    literals.  The clause store and occurrence lists grow in place, so
    clauses added once (e.g. the conflict-graph theory a lib/cavsat
    certainty check shares across all answer candidates) are indexed
    once.  A call that is unsatisfiable under non-empty assumptions
    retains the implied clause over the negated assumptions
    (learned-clause retention); counters live under [sat.dpll.*]. *)
module Incremental : sig
  type t

  val create : unit -> t

  val fresh_var : t -> int
  (** Allocate the next variable number. *)

  val reserve : t -> int -> unit
  (** Ensure the variable range covers the given number. *)

  val add_clause : t -> int list -> unit
  (** Add a clause (non-zero literals).  The empty clause marks the
      solver permanently unsatisfiable. *)

  val solve : ?assumptions:int list -> t -> model option
  (** One satisfying assignment of all clauses added so far under the
      assumption literals, or [None].  On [None] with non-empty
      assumptions the clause of their negations is added to the solver
      (it is implied), so a refuted single-literal assumption behaves
      like a retired selector. *)

  val satisfiable : ?assumptions:int list -> t -> bool

  val nvars : t -> int
  val nclauses : t -> int

  val learned_clauses : t -> int
  (** Number of assumption-refutation clauses retained so far. *)
end
