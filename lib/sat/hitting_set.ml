module Iset = Set.Make (Int)

(* Branch nodes explored by the minimal-hitting-set search — one per
   partial set extended; the repair enumerator's work unit. *)
let c_nodes = Obs.Counter.make "sat.hitting_set.nodes"

let is_hitting edges set =
  let s = Iset.of_list set in
  List.for_all (fun e -> List.exists (fun v -> Iset.mem v s) e) edges

let is_minimal_hitting edges set =
  is_hitting edges set
  && List.for_all
       (fun v -> not (is_hitting edges (List.filter (fun u -> u <> v) set)))
       set

let minimal edges =
  if List.exists (( = ) []) edges then []
  else begin
    let sp = Obs.Trace.start "sat.hitting_sets" in
    (* Seed the branching with the tightest conflicts first: branching on
       small edges (an FD bucket pair has just two vertices) keeps the
       search tree narrow.  The result is a set of sets, so reordering the
       edges never changes the output, only the node count. *)
    let edges =
      List.stable_sort
        (fun a b -> Int.compare (List.length a) (List.length b))
        edges
    in
    let candidates = ref [] in
    let seen = Hashtbl.create 64 in
    let rec go partial =
      Obs.Counter.incr c_nodes;
      Obs.Progress.tick ();
      match List.find_opt (fun e -> not (List.exists (fun v -> Iset.mem v partial) e)) edges with
      | None ->
          let key = Iset.elements partial in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            candidates := key :: !candidates
          end
      | Some e -> List.iter (fun v -> go (Iset.add v partial)) e
    in
    go Iset.empty;
    (* The greedy completion can produce non-minimal hitting sets; keep the
       set-inclusion-minimal ones. *)
    let cands = !candidates in
    let result =
      List.filter
        (fun c ->
          let cs = Iset.of_list c in
          not
            (List.exists
               (fun c' ->
                 c' != c
                 &&
                 let cs' = Iset.of_list c' in
                 Iset.subset cs' cs && not (Iset.equal cs' cs))
               cands))
        cands
    in
    if Obs.Trace.is_enabled () then
      Obs.Trace.attr_int "hitting_sets" (List.length result);
    Obs.Trace.finish sp;
    result
  end

let vertices edges =
  List.fold_left (fun acc e -> List.fold_left (fun acc v -> Iset.add v acc) acc e) Iset.empty edges

(* Connected components of the hypergraph, as groups of edges.  Union-find
   over vertices; components are ordered by the first edge that touches
   them and keep their edges in input order, so the decomposition is
   deterministic.  Edges of distinct components share no vertex, hence the
   minimal hitting sets of the whole hypergraph are exactly the unions of
   one minimal hitting set per component — the parallel repair enumerator
   rests on that. *)
let components edges =
  let parent = Hashtbl.create 64 in
  let rec find v =
    match Hashtbl.find_opt parent v with
    | None | Some None -> v
    | Some (Some p) ->
        let r = find p in
        Hashtbl.replace parent v (Some r);
        r
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent ra (Some rb)
  in
  List.iter
    (fun e ->
      List.iter (fun v -> if not (Hashtbl.mem parent v) then Hashtbl.add parent v None) e;
      match e with [] -> () | v :: rest -> List.iter (union v) rest)
    edges;
  let groups = Hashtbl.create 16 in
  let order = ref [] in
  List.iteri
    (fun i e ->
      (* Empty edges are their own (unhittable) components. *)
      let key = match e with [] -> `Empty i | v :: _ -> `Root (find v) in
      (match Hashtbl.find_opt groups key with
      | None ->
          order := key :: !order;
          Hashtbl.add groups key [ e ]
      | Some es -> Hashtbl.replace groups key (e :: es)))
    edges;
  List.rev_map (fun key -> List.rev (Hashtbl.find groups key)) !order

let minimum edges =
  if edges = [] then Some []
  else if List.exists (( = ) []) edges then None
  else begin
    let verts = Iset.elements (vertices edges) in
    let index = Hashtbl.create 64 and back = Hashtbl.create 64 in
    List.iteri
      (fun i v ->
        Hashtbl.add index v (i + 1);
        Hashtbl.add back (i + 1) v)
      verts;
    let cnf = Cnf.create () in
    Cnf.reserve cnf (List.length verts);
    List.iter
      (fun e -> Cnf.add_clause cnf (List.map (Hashtbl.find index) e))
      edges;
    match Dpll.minimize ~soft:(List.init (List.length verts) (fun i -> i + 1)) cnf with
    | None -> None
    | Some (_cost, model) ->
        Some (List.map (Hashtbl.find back) (Dpll.model_true_vars model))
  end

let minimum_size edges = Option.map List.length (minimum edges)

let minimum_weighted ~weight edges =
  if edges = [] then Some []
  else if List.exists (( = ) []) edges then None
  else begin
    let verts = Iset.elements (vertices edges) in
    let index = Hashtbl.create 64 and back = Hashtbl.create 64 in
    List.iteri
      (fun i v ->
        Hashtbl.add index v (i + 1);
        Hashtbl.add back (i + 1) v)
      verts;
    let cnf = Cnf.create () in
    Cnf.reserve cnf (List.length verts);
    List.iter
      (fun e -> Cnf.add_clause cnf (List.map (Hashtbl.find index) e))
      edges;
    let soft =
      List.mapi (fun i v -> (i + 1, weight v)) verts
    in
    match Dpll.minimize_weighted ~soft cnf with
    | None -> None
    | Some (_cost, model) ->
        Some (List.map (Hashtbl.find back) (Dpll.model_true_vars model))
  end

let minimum_all edges =
  match minimum_size edges with
  | None -> []
  | Some k -> List.filter (fun h -> List.length h = k) (minimal edges)
