(** CNF formula builder.

    Variables are positive integers; a literal is [v] or [-v].  The builder
    is mutable; the solver takes a snapshot.  Adding the empty clause makes
    the formula trivially unsatisfiable. *)

type t

val create : unit -> t
val fresh : t -> int
(** Allocate a new variable. *)

val reserve : t -> int -> unit
(** Make sure variables [1..n] exist. *)

val nvars : t -> int
val add_clause : t -> int list -> unit
(** Raises [Invalid_argument] on literal 0 or out-of-range variables are
    auto-reserved. *)

val clauses : t -> int array list
(** Most recently added first. *)

val nclauses : t -> int
val copy : t -> t
val pp : Format.formatter -> t -> unit
