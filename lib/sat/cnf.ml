type t = { mutable nvars : int; mutable clauses : int array list; mutable n : int }

let create () = { nvars = 0; clauses = []; n = 0 }

let fresh t =
  t.nvars <- t.nvars + 1;
  t.nvars

let reserve t n = if n > t.nvars then t.nvars <- n

let nvars t = t.nvars

let add_clause t lits =
  List.iter
    (fun l ->
      if l = 0 then invalid_arg "Cnf.add_clause: literal 0";
      reserve t (abs l))
    lits;
  t.clauses <- Array.of_list lits :: t.clauses;
  t.n <- t.n + 1

let clauses t = t.clauses
let nclauses t = t.n
let copy t = { nvars = t.nvars; clauses = t.clauses; n = t.n }

let pp ppf t =
  Format.fprintf ppf "p cnf %d %d@." t.nvars t.n;
  List.iter
    (fun c ->
      Array.iter (fun l -> Format.fprintf ppf "%d " l) c;
      Format.fprintf ppf "0@.")
    (List.rev t.clauses)
