type model = bool array

(* Solver counters (repo-wide obs registry): decisions are branch
   attempts, propagations are unit-forced assignments, conflicts are
   falsified clauses met during propagation.  All solver-layer counters
   share the sat.dpll.* prefix so STATS renders them as one group. *)
let c_decisions = Obs.Counter.make "sat.dpll.decisions"
let c_propagations = Obs.Counter.make "sat.dpll.propagations"
let c_conflicts = Obs.Counter.make "sat.dpll.conflicts"
let c_learned = Obs.Counter.make "sat.dpll.learned"
let c_inc_solves = Obs.Counter.make "sat.dpll.incremental_solves"

type state = {
  clauses : int array array;
  nclauses : int;
  occ : int list array; (* literal index -> clause indices *)
  assign : int array; (* 0 unknown, 1 true, -1 false *)
  trail : int array; (* assigned variables in order *)
  mutable trail_len : int;
  weight : float array; (* soft cost of assigning a variable true *)
  mutable cost : float; (* total weight of soft variables currently true *)
}

let lit_index l = if l > 0 then 2 * l else (2 * -l) + 1

let make_state cnf ~soft =
  let nv = Cnf.nvars cnf in
  let clauses = Array.of_list (List.rev (Cnf.clauses cnf)) in
  let occ = Array.make ((2 * nv) + 2) [] in
  Array.iteri
    (fun i c -> Array.iter (fun l -> occ.(lit_index l) <- i :: occ.(lit_index l)) c)
    clauses;
  let weight = Array.make (nv + 1) 0.0 in
  List.iter (fun (v, w) -> if v >= 1 && v <= nv then weight.(v) <- w) soft;
  {
    clauses;
    nclauses = Array.length clauses;
    occ;
    assign = Array.make (nv + 1) 0;
    trail = Array.make (max 1 nv) 0;
    trail_len = 0;
    weight;
    cost = 0.0;
  }

let value st l =
  let v = st.assign.(abs l) in
  if l > 0 then v else -v

(* Assign literal [l] true.  Returns false on conflict (already false). *)
let assign_lit st l =
  match value st l with
  | 1 -> true
  | -1 -> false
  | _ ->
      let v = abs l in
      st.assign.(v) <- (if l > 0 then 1 else -1);
      st.trail.(st.trail_len) <- v;
      st.trail_len <- st.trail_len + 1;
      if l > 0 then st.cost <- st.cost +. st.weight.(v);
      true

let undo_to st mark =
  while st.trail_len > mark do
    st.trail_len <- st.trail_len - 1;
    let v = st.trail.(st.trail_len) in
    if st.assign.(v) = 1 then st.cost <- st.cost -. st.weight.(v);
    st.assign.(v) <- 0
  done

(* Unit propagation from trail position [from].  Returns false on conflict. *)
let propagate st from =
  let qhead = ref from in
  let ok = ref true in
  while !ok && !qhead < st.trail_len do
    let v = st.trail.(!qhead) in
    incr qhead;
    let falsified = if st.assign.(v) = 1 then -v else v in
    let check ci =
      if !ok then begin
        let c = st.clauses.(ci) in
        let sat = ref false and unassigned = ref 0 and unit_lit = ref 0 in
        Array.iter
          (fun l ->
            match value st l with
            | 1 -> sat := true
            | 0 ->
                incr unassigned;
                unit_lit := l
            | _ -> ())
          c;
        if not !sat then
          if !unassigned = 0 then begin
            Obs.Counter.incr c_conflicts;
            ok := false
          end
          else if !unassigned = 1 then
            if assign_lit st !unit_lit then
              Obs.Counter.incr c_propagations
            else begin
              Obs.Counter.incr c_conflicts;
              ok := false
            end
      end
    in
    List.iter check st.occ.(lit_index falsified)
  done;
  !ok

let assume st l =
  let mark = st.trail_len in
  if assign_lit st l && propagate st mark then true
  else begin
    undo_to st mark;
    false
  end

(* Pick an unassigned variable from the shortest unsatisfied clause, falling
   back to any free variable once every clause is satisfied (so that leaves
   of the search are complete assignments). *)
let pick_branch st =
  let best = ref 0 and best_len = ref max_int in
  (try
     for ci = 0 to st.nclauses - 1 do
       let c = st.clauses.(ci) in
       let sat = ref false and unassigned = ref 0 and cand = ref 0 in
       Array.iter
         (fun l ->
           match value st l with
           | 1 -> sat := true
           | 0 ->
               incr unassigned;
               if !cand = 0 then cand := abs l
           | _ -> ())
         c;
       if (not !sat) && !unassigned > 0 && !unassigned < !best_len then begin
         best := !cand;
         best_len := !unassigned;
         if !best_len <= 2 then raise Exit
       end
     done
   with Exit -> ());
  if !best <> 0 then Some !best
  else begin
    let free = ref 0 in
    (try
       for v = 1 to Array.length st.assign - 1 do
         if st.assign.(v) = 0 then begin
           free := v;
           raise Exit
         end
       done
     with Exit -> ());
    if !free = 0 then None else Some !free
  end

exception Stop

(* DFS over complete assignments.  Every leaf reached is a model (unit
   propagation and branching never cross a falsified clause unnoticed
   because [pick_branch] only reports [None] when all clauses are satisfied
   and all variables assigned).  [bound] prunes branches whose soft cost
   already reaches it; [on_model] may raise [Stop]. *)
let rec search st ~bound ~on_model =
  if st.cost >= !bound then ()
  else
    match pick_branch st with
    | None ->
        let m = Array.map (fun a -> a = 1) st.assign in
        on_model st m
    | Some v ->
        let try_sign sign =
          Obs.Counter.incr c_decisions;
          Obs.Progress.tick ();
          let mark = st.trail_len in
          let l = if sign then v else -v in
          if assign_lit st l && propagate st mark then
            search st ~bound ~on_model;
          undo_to st mark
        in
        (* False first: drives minimization toward cheap models first. *)
        try_sign false;
        try_sign true

let init cnf ~assumptions ~soft =
  if List.exists (fun c -> Array.length c = 0) (Cnf.clauses cnf) then None
  else
    let st = make_state cnf ~soft in
    if not (List.for_all (fun l -> assume st l) assumptions) then None
    else if propagate st 0 then Some st
    else None

let solve ?(assumptions = []) cnf =
  let sp = Obs.Trace.start "sat.solve" in
  Obs.Progress.phase "sat.solve";
  let result =
    match init cnf ~assumptions ~soft:[] with
    | None -> None
    | Some st ->
        let result = ref None in
        (try
           search st ~bound:(ref infinity) ~on_model:(fun _ m ->
               result := Some m;
               raise Stop)
         with Stop -> ());
        !result
  in
  if Obs.Trace.is_enabled () then
    Obs.Trace.attr "sat" (if result = None then "unsat" else "sat");
  Obs.Trace.finish sp;
  result

let satisfiable ?assumptions cnf = solve ?assumptions cnf <> None

let enumerate_inner ~assumptions ?limit ?project cnf =
  match init cnf ~assumptions ~soft:[] with
  | None -> []
  | Some st ->
      let seen = Hashtbl.create 64 in
      let models = ref [] and count = ref 0 in
      let key m =
        match project with
        | None -> Array.to_list m
        | Some vs -> List.map (fun v -> m.(v)) vs
      in
      (try
         search st ~bound:(ref infinity) ~on_model:(fun _ m ->
             let k = key m in
             if not (Hashtbl.mem seen k) then begin
               Hashtbl.add seen k ();
               models := m :: !models;
               incr count;
               match limit with
               | Some l when !count >= l -> raise Stop
               | _ -> ()
             end)
       with Stop -> ());
      List.rev !models

let enumerate ?(assumptions = []) ?limit ?project cnf =
  let sp = Obs.Trace.start "sat.enumerate" in
  Obs.Progress.phase "sat.enumerate";
  match enumerate_inner ~assumptions ?limit ?project cnf with
  | models ->
      if Obs.Trace.is_enabled () then
        Obs.Trace.attr_int "models" (List.length models);
      Obs.Trace.finish sp;
      models
  | exception e ->
      Obs.Trace.finish sp;
      raise e

let count ?assumptions ?project cnf =
  List.length (enumerate ?assumptions ?project cnf)

let minimize_weighted ?(assumptions = []) ~soft cnf =
  let sp = Obs.Trace.start "sat.minimize" in
  Obs.Progress.phase "sat.minimize";
  let best =
    match init cnf ~assumptions ~soft with
    | None -> None
    | Some st ->
        let best = ref None in
        let bound = ref infinity in
        (try
           search st ~bound ~on_model:(fun st m ->
               if st.cost < !bound then begin
                 bound := st.cost;
                 best := Some (st.cost, m);
                 Obs.Progress.bound (int_of_float (Float.round st.cost));
                 if st.cost <= 0.0 then raise Stop
               end)
         with Stop -> ());
        !best
  in
  Obs.Trace.finish sp;
  best

let minimize ?assumptions ~soft cnf =
  match
    minimize_weighted ?assumptions ~soft:(List.map (fun v -> (v, 1.0)) soft)
      cnf
  with
  | None -> None
  | Some (cost, m) -> Some (int_of_float (Float.round cost), m)

let model_true_vars m =
  let acc = ref [] in
  for v = Array.length m - 1 downto 1 do
    if m.(v) then acc := v :: !acc
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* Incremental solving.

   A persistent solver that accepts clauses and variables between calls
   and solves under per-call assumption literals.  The clause store and
   occurrence lists grow in place (capacity doubling), so the formula
   built by earlier calls is never re-indexed; each [solve] only pays
   for what was added since the last one.  When a call is unsatisfiable
   under non-empty assumptions the clause over their negations is
   implied by the formula, so it is retained — callers that probe one
   selector literal per candidate (lib/cavsat) get their refuted
   selectors retired automatically. *)

module Incremental = struct
  type solver = {
    mutable clauses : int array array; (* capacity-doubled; [0, n) used *)
    mutable n : int;
    mutable occ : int list array; (* literal index -> clause indices *)
    mutable nvars : int;
    mutable assign : int array;
    mutable trail : int array;
    mutable synced_vars : int; (* assign/trail are sized for this many *)
    mutable zero_weight : float array;
    mutable learned : int;
    mutable root_unsat : bool; (* an empty clause was added *)
  }

  type t = solver

  let create () =
    {
      clauses = Array.make 16 [||];
      n = 0;
      occ = Array.make 64 [];
      nvars = 0;
      assign = [||];
      trail = [||];
      synced_vars = -1;
      zero_weight = [||];
      learned = 0;
      root_unsat = false;
    }

  let nvars t = t.nvars
  let nclauses t = t.n
  let learned_clauses t = t.learned

  let fresh_var t =
    t.nvars <- t.nvars + 1;
    t.nvars

  let reserve t v = if v > t.nvars then t.nvars <- v

  let ensure_occ t idx =
    if idx >= Array.length t.occ then begin
      let cap = ref (max 64 (Array.length t.occ)) in
      while idx >= !cap do
        cap := !cap * 2
      done;
      let occ = Array.make !cap [] in
      Array.blit t.occ 0 occ 0 (Array.length t.occ);
      t.occ <- occ
    end

  let add_clause t lits =
    match lits with
    | [] -> t.root_unsat <- true
    | _ ->
        let arr = Array.of_list lits in
        Array.iter
          (fun l ->
            if l = 0 then invalid_arg "Dpll.Incremental.add_clause: literal 0";
            reserve t (abs l))
          arr;
        if t.n >= Array.length t.clauses then begin
          let clauses = Array.make (2 * Array.length t.clauses) [||] in
          Array.blit t.clauses 0 clauses 0 t.n;
          t.clauses <- clauses
        end;
        let ci = t.n in
        t.clauses.(ci) <- arr;
        t.n <- t.n + 1;
        Array.iter
          (fun l ->
            let idx = lit_index l in
            ensure_occ t idx;
            t.occ.(idx) <- ci :: t.occ.(idx))
          arr

  (* Size the assignment structures for the current variable count.  The
     trail is always empty between solves, so growing them is a plain
     reallocation, not a migration. *)
  let sync t =
    if t.synced_vars <> t.nvars then begin
      t.assign <- Array.make (t.nvars + 1) 0;
      t.trail <- Array.make (max 1 t.nvars) 0;
      t.zero_weight <- Array.make (t.nvars + 1) 0.0;
      ensure_occ t ((2 * t.nvars) + 1);
      t.synced_vars <- t.nvars
    end

  (* A [state] view over the shared arrays: [search]/[propagate] run
     unchanged on it, and [undo_to 0] afterwards restores the blank
     assignment for the next call. *)
  let view t =
    {
      clauses = t.clauses;
      nclauses = t.n;
      occ = t.occ;
      assign = t.assign;
      trail = t.trail;
      trail_len = 0;
      weight = t.zero_weight;
      cost = 0.0;
    }

  let solve ?(assumptions = []) t =
    let sp = Obs.Trace.start "sat.dpll.solve" in
    Obs.Counter.incr c_inc_solves;
    Obs.Progress.tick ();
    let result =
      if t.root_unsat then None
      else begin
        List.iter (fun l -> reserve t (abs l)) assumptions;
        sync t;
        let st = view t in
        let outcome =
          if not (List.for_all (fun l -> assume st l) assumptions) then None
          else begin
            let found = ref None in
            (try
               search st ~bound:(ref infinity) ~on_model:(fun _ m ->
                   found := Some m;
                   raise Stop)
             with Stop -> ());
            !found
          end
        in
        undo_to st 0;
        (match outcome with
        | None when assumptions <> [] ->
            (* UNSAT under assumptions: the formula implies the clause of
               their negations.  Keep it, so the refutation is never
               re-derived. *)
            add_clause t (List.map (fun l -> -l) assumptions);
            t.learned <- t.learned + 1;
            Obs.Counter.incr c_learned
        | _ -> ());
        outcome
      end
    in
    if Obs.Trace.is_enabled () then
      Obs.Trace.attr "sat" (if result = None then "unsat" else "sat");
    Obs.Trace.finish sp;
    result

  let satisfiable ?assumptions t = solve ?assumptions t <> None
end
