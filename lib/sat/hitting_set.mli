(** Hitting sets of hypergraphs.

    The conflict hypergraph of a database wrt. a set of denial constraints
    (paper, Figure 1) has tuples as vertices and minimal violation sets as
    hyperedges; S-repairs are the complements of its minimal hitting sets
    and C-repairs the complements of its minimum-cardinality ones.

    Vertices are arbitrary integers (tids).  An empty hyperedge makes the
    hypergraph unhittable: [minimal] returns no hitting set at all and
    [minimum] returns [None].  Conversely, the hypergraph with no edges has
    exactly the empty hitting set. *)

val is_hitting : int list list -> int list -> bool
val is_minimal_hitting : int list list -> int list -> bool

val minimal : int list list -> int list list
(** All set-inclusion-minimal hitting sets (each sorted ascending).  The
    empty hypergraph has the single minimal hitting set [[]]. *)

val components : int list list -> int list list list
(** Partition the edges into the connected components of the hypergraph
    (deterministic: components ordered by first touching edge, edges in
    input order; an empty edge is its own component).  Minimal hitting sets
    of the whole hypergraph = unions of one minimal hitting set per
    component, which is what makes per-component parallel enumeration
    sound. *)

val minimum : int list list -> int list option
(** One minimum-cardinality hitting set, computed by branch-and-bound on
    the SAT encoding (one variable per vertex, one clause per edge). *)

val minimum_all : int list list -> int list list
(** All minimum-cardinality hitting sets. *)

val minimum_size : int list list -> int option

val minimum_weighted :
  weight:(int -> float) -> int list list -> int list option
(** A hitting set of minimum total weight (weights non-negative) — branch
    and bound on the weighted SAT encoding. *)
