(** A capacity-bounded least-recently-used cache.

    The serving layer memoizes certain answers, repair counts and
    inconsistency measures keyed by instance digest × semantics × query
    (see {!Handler}); this module is the generic bounded store underneath.
    [find] and [add] both count as a use and promote the entry to
    most-recently-used; once [length] would exceed [capacity] the
    least-recently-used entry is evicted.  All operations are O(1). *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** Raises [Invalid_argument] if [capacity < 1]. *)

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Promotes the entry to most-recently-used on a hit. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Membership without promotion. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or overwrite, promoting to most-recently-used; evicts the
    least-recently-used entry when the cache is full. *)

val remove : ('k, 'v) t -> 'k -> unit
(** No-op if the key is absent. *)

val clear : ('k, 'v) t -> unit

val evictions : ('k, 'v) t -> int
(** Entries dropped by capacity pressure since [create] (not counting
    explicit [remove]/[clear]). *)

val keys : ('k, 'v) t -> 'k list
(** Most-recently-used first; for tests and introspection. *)
