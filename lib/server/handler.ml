module P = Protocol
module Value = Relational.Value

type t = {
  sessions : Session.store;
  cache : (string, string * string list) Lru.t; (* key -> head, body *)
  metrics : Metrics.t;
  max_body_lines : int;
  on_trace : (Obs.Trace.span list -> unit) option;
  events : Obs.Events.sink option;
  slow_s : float option; (* slow-query threshold, seconds *)
  clock : unit -> float;
  next_rid : int ref; (* request ids, threaded through events and spans *)
}

let create ?(cache_capacity = 512) ?(max_body_lines = 10_000) ?on_trace ?events
    ?slow_ms ?(clock = Unix.gettimeofday) () =
  let metrics = Metrics.create () in
  (* Route the solver counters (sat.dpll.decisions, cavsat.sat_calls,
     repairs.candidates, and friends) into this handler's registry so
     STATS renders request and solver telemetry through one path. *)
  Obs.Registry.set_current (Metrics.registry metrics);
  {
    sessions = Session.create_store ();
    cache = Lru.create ~capacity:cache_capacity;
    metrics;
    max_body_lines;
    on_trace;
    events;
    slow_s = Option.map (fun ms -> ms /. 1e3) slow_ms;
    clock;
    next_rid = ref 0;
  }

let metrics t = t.metrics
let sessions t = t.sessions
let cache_length t = Lru.length t.cache

(* Refresh the runtime gauges: GC pressure, domain-pool occupancy, and
   the serving layer's own residency numbers.  Called by the loop's
   gauge ticker and before every STATS/METRICS render, so a scrape never
   sees stale values. *)
let sample_gauges t =
  let registry = Metrics.registry t.metrics in
  Obs.Runtime.sample_gc registry;
  Par.sample_gauges registry;
  let g name v = Obs.Registry.set_gauge registry name (float_of_int v) in
  g "sessions.count" (Session.count t.sessions);
  g "sessions.resident_facts" (Session.resident_facts t.sessions);
  g "sessions.tracked_keys" (Session.tracked_keys t.sessions);
  g "cache.entries" (Lru.length t.cache);
  g "cache.capacity" (Lru.capacity t.cache);
  g "cache.evictions" (Lru.evictions t.cache)

let metrics_text t =
  sample_gauges t;
  Obs.Prometheus.render (Metrics.registry t.metrics)

let method_label : P.method_ -> string = function
  | P.Auto -> "auto"
  | P.Enum -> "enum"
  | P.Rewriting -> "rewriting"
  | P.Key_rewriting -> "key-rewriting"
  | P.Asp -> "asp"
  | P.Sat -> "sat"

let semantics_label : P.semantics -> string = function P.S -> "s" | P.C -> "c"

let engine_method : P.method_ -> Cqa.Engine.answer_method = function
  | P.Auto -> `Auto
  | P.Enum -> `Repair_enumeration
  | P.Rewriting -> `Residue_rewriting
  | P.Key_rewriting -> `Key_rewriting
  | P.Asp -> `Asp
  | P.Sat -> `Sat

let with_session t sid f =
  match Session.find t.sessions sid with
  | None -> P.err (Printf.sprintf "unknown session %S (LOAD it first)" sid)
  | Some session -> f session

(* Memoize [compute] under [key]: on a hit the stored response is
   replayed; on a miss the key is recorded against the session so UPDATE
   can drop it eagerly. *)
let cached t session key compute =
  match Lru.find t.cache key with
  | Some (head, body) ->
      Metrics.cache_hit t.metrics;
      P.ok ~body head
  | None -> (
      Metrics.cache_miss t.metrics;
      match compute () with
      | { P.status = `Ok; head; body } ->
          Lru.add t.cache key (head, body);
          Session.remember_key session key;
          P.ok ~body head
      | r -> r)

let pp_row row =
  (* A Boolean query's positive answer is the empty tuple. *)
  if row = [] then "true"
  else String.concat ", " (List.map Value.to_string row)

let exec_query (session : Session.t) name method_ semantics =
  match Cqa.Parse.find_ucq session.doc name with
  | exception Not_found ->
      P.err (Printf.sprintf "no query named %S in session %S" name session.id)
  | u -> (
      match (u.Logic.Ucq.disjuncts, semantics) with
      | [ q ], P.S ->
          let rows =
            Cqa.Engine.consistent_answers ~method_:(engine_method method_)
              session.engine q
          in
          P.ok ~body:(List.map pp_row rows)
            (Printf.sprintf "answers=%d" (List.length rows))
      | [ q ], P.C ->
          let rows = Cqa.Engine.consistent_answers_c session.engine q in
          P.ok ~body:(List.map pp_row rows)
            (Printf.sprintf "answers=%d" (List.length rows))
      | _, P.C -> P.err "C-repair semantics supports single queries only"
      | _, P.S -> (
          match method_ with
          | P.Sat ->
              P.err
                (Printf.sprintf
                   "method=sat not applicable to %S: the SAT backend compiles \
                    single conjunctive queries (union has %d disjuncts)"
                   name
                   (List.length u.Logic.Ucq.disjuncts))
          | P.Rewriting | P.Key_rewriting ->
              (* Refuse rather than silently running a different (and
                 differently priced) algorithm than the one requested —
                 and let the analyzer name the condition that fails. *)
              P.err
                (Printf.sprintf "method=%s not applicable to %S: %s"
                   (method_label method_) name
                   (Analysis.Classify.ucq_rewriting_diagnostic
                      session.doc.ics u))
          | P.Auto | P.Enum | P.Asp ->
              let m =
                match method_ with P.Asp -> `Asp | _ -> `Repair_enumeration
              in
              let rows =
                Cqa.Engine.consistent_answers_ucq ~method_:m session.engine u
              in
              P.ok ~body:(List.map pp_row rows)
                (Printf.sprintf "answers=%d" (List.length rows))))

let query_cache_key (session : Session.t) name method_ semantics =
  String.concat "|"
    [
      session.digest; "query"; name; method_label method_;
      semantics_label semantics;
    ]

(* The plan section of EXPLAIN: the Engine.plan branch the request
   executes (direct / key_rewriting / sat_compilation /
   repair_enumeration, or the forced method's branch) and the
   classifier's verdict.  Emitted on every successful EXPLAIN whatever
   the method, semantics, or cache state. *)
let plan_lines (session : Session.t) name method_ semantics =
  match Cqa.Parse.find_ucq session.doc name with
  | exception Not_found -> []
  | u -> (
      match u.Logic.Ucq.disjuncts with
      | [ q ] ->
          let p = Cqa.Engine.plan session.engine q in
          let branch =
            match (semantics, method_) with
            | P.C, _ -> "asp_c"
            | P.S, P.Auto -> Cqa.Engine.route_label p.Cqa.Engine.route
            | P.S, P.Enum -> "repair_enumeration"
            | P.S, P.Rewriting -> "residue_rewriting"
            | P.S, P.Key_rewriting -> "key_rewriting"
            | P.S, P.Asp -> "asp"
            | P.S, P.Sat -> "sat_compilation"
          in
          [
            "-- plan";
            Printf.sprintf "branch %s" branch;
            Printf.sprintf "verdict %s witness %s"
              (Analysis.Classify.verdict_label
                 p.Cqa.Engine.classification.Analysis.Classify.verdict)
              (Analysis.Classify.witness_code
                 p.Cqa.Engine.classification.Analysis.Classify.witness);
            Printf.sprintf "auto_route %s"
              (Cqa.Engine.route_label p.Cqa.Engine.route);
          ]
      | disjuncts ->
          let c = Analysis.Classify.classify_ucq session.doc.ics u in
          let branch =
            match (semantics, method_) with
            | P.C, _ -> "asp_c"
            | P.S, P.Asp -> "asp"
            | P.S, _ -> "repair_enumeration"
          in
          [
            "-- plan";
            Printf.sprintf "branch %s (union query, %d disjuncts)" branch
              (List.length disjuncts);
            Printf.sprintf "verdict %s witness %s"
              (Analysis.Classify.verdict_label c.Analysis.Classify.verdict)
              (Analysis.Classify.witness_code c.Analysis.Classify.witness);
          ])

(* EXPLAIN runs the query fresh under a private trace sink and reports
   what it cost: whether an equivalent QUERY would be answered from the
   memo cache, the span tree, and the solver-counter deltas.  It never
   reads or fills the cache itself, so the measurement is repeatable. *)
let exec_explain t (session : Session.t) name method_ semantics =
  let key = query_cache_key session name method_ semantics in
  let cache_state = if Lru.mem t.cache key then "hit" else "miss" in
  let registry = Metrics.registry t.metrics in
  let before = Obs.Registry.counter_snapshot registry in
  let t0 = Unix.gettimeofday () in
  let response, spans =
    Obs.Trace.collect (fun () -> exec_query session name method_ semantics)
  in
  let wall = Unix.gettimeofday () -. t0 in
  match response with
  | { P.status = `Err; _ } -> response
  | { P.status = `Ok; head; _ } ->
      let deltas = Obs.Registry.counter_delta ~since:before registry in
      (* The static side of the story: the classifier's verdict, witness
         and auto-route for the query, so every explained answer carries
         its justification next to the measured cost. *)
      let analysis =
        match Cqa.Analyze.query_lines session.doc name with
        | lines -> "-- analysis" :: lines
        | exception Not_found -> []
      in
      let body =
        Printf.sprintf "cache %s key=%s" cache_state key
        :: (plan_lines session name method_ semantics @ analysis)
        @ ("-- spans" :: Obs.Export.tree spans)
        @ "-- counters"
          :: List.map (fun (n, v) -> Printf.sprintf "%s %d" n v) deltas
      in
      P.ok ~body
        (Printf.sprintf "explain %s wall_us=%.1f spans=%d" head (wall *. 1e6)
           (List.length spans))

let exec_check (session : Session.t) =
  let witnesses =
    Constraints.Violation.all session.doc.instance session.doc.schema
      session.doc.ics
  in
  if witnesses = [] then P.ok "consistent"
  else P.ok (Printf.sprintf "inconsistent violations=%d" (List.length witnesses))

let exec_repairs (session : Session.t) semantics =
  let count =
    match semantics with
    | P.S ->
        Repairs.Count.s_repairs session.doc.instance session.doc.schema
          session.doc.ics
    | P.C ->
        Repairs.Count.c_repairs session.doc.instance session.doc.schema
          session.doc.ics
  in
  P.ok (Printf.sprintf "count=%d" count)

let exec_analyze (session : Session.t) name =
  match name with
  | Some name -> (
      match Cqa.Analyze.query_lines session.doc name with
      | lines ->
          P.ok ~body:lines
            (Printf.sprintf "analyze query=%s lines=%d" name (List.length lines))
      | exception Not_found ->
          P.err
            (Printf.sprintf "no query named %S in session %S" name session.id))
  | None ->
      let report = Cqa.Analyze.document session.doc in
      let body = Cqa.Analyze.lines report in
      P.ok ~body
        (Printf.sprintf "analyze queries=%d errors=%s lines=%d"
           (List.length report.Cqa.Analyze.queries)
           (if Cqa.Analyze.has_errors report then "yes" else "no")
           (List.length body))

let exec_measure (session : Session.t) =
  let measures =
    Measures.Degree.all session.doc.instance session.doc.schema
      session.doc.ics
  in
  P.ok
    ~body:(List.map (fun (name, x) -> Printf.sprintf "%s %.4f" name x) measures)
    (Printf.sprintf "measures=%d" (List.length measures))

let exec t payload = function
  | P.Load sid -> (
      let text = String.concat "\n" (Option.value ~default:[] payload) in
      match Cqa.Parse.document_of_string text with
      | exception Cqa.Parse.Error (line, msg) ->
          P.err (Printf.sprintf "payload line %d: %s" line msg)
      | exception Invalid_argument msg -> P.err ("payload: " ^ msg)
      | doc ->
          (* On re-LOAD the replaced session's entries would linger in
             the cache untracked by any session; drop them now. *)
          (match Session.find t.sessions sid with
          | Some old -> List.iter (Lru.remove t.cache) (Session.take_keys old)
          | None -> ());
          let _session = Session.load t.sessions ~id:sid doc in
          P.ok
            (Printf.sprintf "loaded session=%s facts=%d ics=%d queries=%d" sid
               (Relational.Instance.size doc.instance)
               (List.length doc.ics)
               (List.length doc.queries)))
  | P.Query { sid; name; method_; semantics } ->
      with_session t sid (fun session ->
          let key = query_cache_key session name method_ semantics in
          cached t session key (fun () -> exec_query session name method_ semantics))
  | P.Trace flag ->
      Obs.Trace.set_enabled flag;
      P.ok (if flag then "trace=on" else "trace=off")
  | P.Explain { sid; name; method_; semantics } ->
      with_session t sid (fun session ->
          exec_explain t session name method_ semantics)
  | P.Check sid -> with_session t sid exec_check
  | P.Repairs { sid; semantics } ->
      with_session t sid (fun session ->
          let key =
            String.concat "|"
              [ session.digest; "repairs"; semantics_label semantics ]
          in
          cached t session key (fun () -> exec_repairs session semantics))
  | P.Measure sid ->
      with_session t sid (fun session ->
          let key = String.concat "|" [ session.digest; "measure" ] in
          cached t session key (fun () -> exec_measure session))
  | P.Analyze { sid; name } ->
      with_session t sid (fun session ->
          (* Analysis is pure in the document, so it memoizes under the
             digest like any query. *)
          let key =
            String.concat "|"
              [ session.digest; "analyze"; Option.value ~default:"*" name ]
          in
          cached t session key (fun () -> exec_analyze session name))
  | P.Update { sid; op; rel; values } ->
      with_session t sid (fun session ->
          match Session.apply_update session ~op ~rel values with
          | Error msg -> P.err msg
          | Ok () ->
              (* The digest changed, so stale entries can no longer be
                 hit; dropping them eagerly also frees cache room. *)
              List.iter (Lru.remove t.cache) (Session.take_keys session);
              P.ok
                (Printf.sprintf "size=%d"
                   (Relational.Instance.size session.doc.instance)))
  | P.Stats ->
      sample_gauges t;
      let body =
        Printf.sprintf "sessions %d" (Session.count t.sessions)
        :: Printf.sprintf "cache_entries %d" (Lru.length t.cache)
        :: Printf.sprintf "cache_evictions %d" (Lru.evictions t.cache)
        :: Metrics.render t.metrics
      in
      P.ok ~body (Printf.sprintf "stats=%d" (List.length body))
  | P.Metrics ->
      let body =
        String.split_on_char '\n' (metrics_text t)
        |> List.filter (fun l -> l <> "")
      in
      P.ok ~body (Printf.sprintf "metrics lines=%d" (List.length body))
  | P.Close sid ->
      if Session.close t.sessions sid then P.ok (Printf.sprintf "closed %s" sid)
      else P.err (Printf.sprintf "unknown session %S" sid)
  | P.Quit -> P.ok "bye"

(* Commands whose execution is worth a span tree: the ones that touch a
   session's engine.  The control commands stay unwrapped — notably
   TRACE, whose toggle [Obs.Trace.collect] would silently undo when it
   restores the enabled flag. *)
let traceable = function
  | P.Load _ | P.Query _ | P.Check _ | P.Repairs _ | P.Measure _
  | P.Update _ | P.Explain _ | P.Analyze _ ->
      true
  | P.Stats | P.Metrics | P.Trace _ | P.Close _ | P.Quit -> false

let sid_of = function
  | P.Load sid
  | P.Check sid
  | P.Measure sid
  | P.Close sid
  | P.Query { sid; _ }
  | P.Repairs { sid; _ }
  | P.Update { sid; _ }
  | P.Explain { sid; _ }
  | P.Analyze { sid; _ } ->
      Some sid
  | P.Stats | P.Metrics | P.Trace _ | P.Quit -> None

let emit_request_event t ~rid ~command ~response ~latency =
  match t.events with
  | None -> ()
  | Some sink ->
      let open Obs.Events in
      let fields =
        [
          ("command", Str (P.command_label command));
          ( "status",
            Str (match response.P.status with `Ok -> "ok" | `Err -> "err") );
          ("head", Str response.P.head);
          ("wall_us", Float (latency *. 1e6));
        ]
        @ match sid_of command with Some sid -> [ ("sid", Str sid) ] | None -> []
      in
      emit sink ~req:rid ~fields "request"

(* The slow-query record: everything EXPLAIN would have shown, captured
   after the fact — the span tree the request actually executed and the
   solver-counter deltas it caused. *)
let emit_slow_event t ~rid ~command ~latency ~spans ~deltas =
  match t.events with
  | None -> ()
  | Some sink ->
      let open Obs.Events in
      let json_list xs =
        "[" ^ String.concat "," (List.map Obs.Export.json_string xs) ^ "]"
      in
      let counters =
        "{"
        ^ String.concat ","
            (List.map
               (fun (n, v) ->
                 Printf.sprintf "%s:%d" (Obs.Export.json_string n) v)
               deltas)
        ^ "}"
      in
      let fields =
        [
          ("command", Str (P.command_label command));
          ("wall_us", Float (latency *. 1e6));
          ("spans", Raw (json_list (Obs.Export.tree spans)));
          ("counters", Raw counters);
        ]
        @ match sid_of command with Some sid -> [ ("sid", Str sid) ] | None -> []
      in
      emit sink ~req:rid ~fields "slow_query"

let dispatch t ?payload command =
  incr t.next_rid;
  let rid = !(t.next_rid) in
  let registry = Metrics.registry t.metrics in
  let collecting = t.slow_s <> None && traceable command in
  let before =
    if collecting then Obs.Registry.counter_snapshot registry else []
  in
  let t0 = t.clock () in
  let run () =
    try exec t payload command
    with e -> P.err (Printf.sprintf "internal: %s" (Printexc.to_string e))
  in
  let response, collected =
    if collecting then
      let r, spans =
        Obs.Trace.collect (fun () ->
            Obs.Trace.with_span
              ~attrs:
                [
                  ("req", string_of_int rid);
                  ("command", P.command_label command);
                ]
              "request" run)
      in
      (r, Some spans)
    else (run (), None)
  in
  let latency = t.clock () -. t0 in
  Metrics.observe t.metrics ~command:(P.command_label command) ~latency;
  if response.P.status = `Err then Metrics.error t.metrics;
  emit_request_event t ~rid ~command ~response ~latency;
  (match (t.slow_s, collected) with
  | Some thr, Some spans when latency > thr ->
      let deltas = Obs.Registry.counter_delta ~since:before registry in
      emit_slow_event t ~rid ~command ~latency ~spans ~deltas
  | _ -> ());
  (* When server-wide tracing is on, hand the spans this request left to
     the owner (cqa_server streams them to disk).  With the slow-query
     log armed they were captured privately; otherwise they sit in the
     global sink. *)
  (match t.on_trace with
  | Some f when Obs.Trace.is_enabled () -> (
      match collected with
      | Some spans -> if spans <> [] then f spans
      | None -> ( match Obs.Trace.drain () with [] -> () | spans -> f spans))
  | _ -> ());
  P.clamp ~max_lines:t.max_body_lines response

let parse_failure t msg =
  Metrics.parse_error t.metrics;
  Metrics.error t.metrics;
  P.err msg

let handle_line t ?payload line =
  match P.parse line with
  | Ok command -> dispatch t ?payload command
  | Error msg -> parse_failure t msg
