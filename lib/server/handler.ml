module P = Protocol
module Value = Relational.Value

type t = {
  sessions : Session.store;
  cache : (string, string * string list) Lru.t; (* key -> head, body *)
  metrics : Metrics.t;
  max_body_lines : int;
  on_trace : (Obs.Trace.span list -> unit) option;
  events : Obs.Events.sink option;
  slow_s : float option; (* slow-query threshold, seconds *)
  clock : unit -> float;
  next_rid : int ref; (* request ids, threaded through events and spans *)
  stats : Obs.Stats.t option; (* fingerprint workload store *)
  sampler : Obs.Sampler.t option; (* tail-sampled trace ring *)
  fp_memo :
    ( string,
      (string * Logic.Cq.t) list
      * Constraints.Ic.t list
      * (string * string) )
    Hashtbl.t;
      (* sid|query|method|semantics -> (queries, ics, (fingerprint,
         branch)), the lists validating the entry by physical identity;
         bounded by periodic reset *)
  mutable last_cache : Obs.Stats.cache_outcome;
      (* what the memo cache did for the request being dispatched *)
  mutable baseline_scratch : Obs.Registry.counter_baseline option;
      (* previous request's counter capture, recycled in place *)
  default_timeout_s : float option;
      (* deadline applied to session-touching requests that carry no
         timeout= of their own *)
  progress : bool;
      (* arm an Obs.Progress context per session-touching request —
         heartbeats, INFLIGHT, deadlines.  Off by default at this layer
         (handler unit tests script the clock and count its pops); the
         loop and the server arm it. *)
  version : string;
  started : float;
      (* wall-clock at creation, for the uptime gauge; deliberately not
         the stubbable latency clock, whose scripts count dispatches *)
}

let create ?(cache_capacity = 512) ?(max_body_lines = 10_000) ?on_trace ?events
    ?slow_ms ?stats ?sampler ?default_timeout_ms ?(progress = false)
    ?(version = "dev") ?(clock = Unix.gettimeofday) () =
  let metrics = Metrics.create () in
  (* Route the solver counters (sat.dpll.decisions, cavsat.sat_calls,
     repairs.candidates, and friends) into this handler's registry so
     STATS renders request and solver telemetry through one path. *)
  Obs.Registry.set_current (Metrics.registry metrics);
  (* Pre-create the framing-truncation counter so STATS shows
     protocol.clamped_total 0 before the first clamp. *)
  ignore
    (Obs.Registry.counter_cell (Metrics.registry metrics)
       "protocol.clamped_total"
      : int ref);
  {
    sessions = Session.create_store ();
    cache = Lru.create ~capacity:cache_capacity;
    metrics;
    max_body_lines;
    on_trace;
    events;
    slow_s = Option.map (fun ms -> ms /. 1e3) slow_ms;
    clock;
    next_rid = ref 0;
    stats;
    sampler;
    fp_memo = Hashtbl.create 64;
    last_cache = Obs.Stats.Uncached;
    baseline_scratch = None;
    default_timeout_s = Option.map (fun ms -> ms /. 1e3) default_timeout_ms;
    progress;
    version;
    started = Unix.gettimeofday ();
  }

let metrics t = t.metrics
let sessions t = t.sessions
let cache_length t = Lru.length t.cache
let stats t = t.stats
let sampler t = t.sampler

(* Refresh the runtime gauges: GC pressure, domain-pool occupancy, and
   the serving layer's own residency numbers.  Called by the loop's
   gauge ticker and before every STATS/METRICS render, so a scrape never
   sees stale values. *)
let sample_gauges t =
  let registry = Metrics.registry t.metrics in
  Obs.Runtime.sample_gc registry;
  Par.sample_gauges registry;
  let g name v = Obs.Registry.set_gauge registry name (float_of_int v) in
  g "sessions.count" (Session.count t.sessions);
  g "sessions.resident_facts" (Session.resident_facts t.sessions);
  g "sessions.tracked_keys" (Session.tracked_keys t.sessions);
  g "cache.entries" (Lru.length t.cache);
  g "cache.capacity" (Lru.capacity t.cache);
  g "cache.evictions" (Lru.evictions t.cache);
  (* The in-flight table: mangles to cqa_inflight_requests /
     cqa_inflight_oldest_seconds on /metrics.  Real wall time, not the
     stubbable latency clock — same policy as the uptime gauge. *)
  let ctxs = Obs.Progress.inflight () in
  g "inflight.requests" (List.length ctxs);
  Obs.Registry.set_gauge registry "inflight.oldest_seconds"
    (match ctxs with
    | [] -> 0.0
    | oldest :: _ ->
        Float.max 0.0 (Unix.gettimeofday () -. Obs.Progress.started oldest));
  (* Mangles to cqa_server_uptime_seconds on /metrics: lets dashboards
     detect restarts without scraping process metrics. *)
  Obs.Registry.set_gauge registry "server.uptime_seconds"
    (Unix.gettimeofday () -. t.started)

let metrics_text t =
  sample_gauges t;
  let base = Obs.Prometheus.render (Metrics.registry t.metrics) in
  (* A constant-1 info gauge whose labels carry the identities a mixed
     fleet is debugged by. *)
  let build =
    [
      "# HELP cqa_build_info Build information; the value is always 1.";
      "# TYPE cqa_build_info gauge";
      Obs.Prometheus.sample
        ~labels:
          [ ("version", t.version); ("ocaml_version", Sys.ocaml_version) ]
        "cqa_build_info" "1";
    ]
  in
  let workload =
    match t.stats with Some s -> Obs.Stats.prometheus_lines s | None -> []
  in
  base ^ String.concat "" (List.map (fun l -> l ^ "\n") (build @ workload))

let method_label : P.method_ -> string = function
  | P.Auto -> "auto"
  | P.Enum -> "enum"
  | P.Rewriting -> "rewriting"
  | P.Key_rewriting -> "key-rewriting"
  | P.Datalog -> "datalog"
  | P.Asp -> "asp"
  | P.Sat -> "sat"

let semantics_label : P.semantics -> string = function P.S -> "s" | P.C -> "c"

let engine_method : P.method_ -> Cqa.Engine.answer_method = function
  | P.Auto -> `Auto
  | P.Enum -> `Repair_enumeration
  | P.Rewriting -> `Residue_rewriting
  | P.Key_rewriting -> `Key_rewriting
  | P.Datalog -> `Datalog
  | P.Asp -> `Asp
  | P.Sat -> `Sat

let with_session t sid f =
  match Session.find t.sessions sid with
  | None -> P.err (Printf.sprintf "unknown session %S (LOAD it first)" sid)
  | Some session -> f session

(* Memoize [compute] under [key]: on a hit the stored response is
   replayed; on a miss the key is recorded against the session so UPDATE
   can drop it eagerly. *)
let cached t session key compute =
  match Lru.find t.cache key with
  | Some (head, body) ->
      Metrics.cache_hit t.metrics;
      t.last_cache <- Obs.Stats.Hit;
      P.ok ~body head
  | None -> (
      Metrics.cache_miss t.metrics;
      t.last_cache <- Obs.Stats.Miss;
      match compute () with
      | { P.status = `Ok; head; body } ->
          Lru.add t.cache key (head, body);
          Session.remember_key session key;
          P.ok ~body head
      | r -> r)

let pp_row row =
  (* A Boolean query's positive answer is the empty tuple. *)
  if row = [] then "true"
  else String.concat ", " (List.map Value.to_string row)

let exec_query (session : Session.t) name method_ semantics =
  match Cqa.Parse.find_ucq session.doc name with
  | exception Not_found ->
      P.err (Printf.sprintf "no query named %S in session %S" name session.id)
  | u -> (
      match (u.Logic.Ucq.disjuncts, semantics) with
      | [ q ], P.S ->
          let rows =
            Cqa.Engine.consistent_answers ~method_:(engine_method method_)
              session.engine q
          in
          P.ok ~body:(List.map pp_row rows)
            (Printf.sprintf "answers=%d" (List.length rows))
      | [ q ], P.C ->
          let rows = Cqa.Engine.consistent_answers_c session.engine q in
          P.ok ~body:(List.map pp_row rows)
            (Printf.sprintf "answers=%d" (List.length rows))
      | _, P.C -> P.err "C-repair semantics supports single queries only"
      | _, P.S -> (
          match method_ with
          | P.Sat ->
              P.err
                (Printf.sprintf
                   "method=sat not applicable to %S: the SAT backend compiles \
                    single conjunctive queries (union has %d disjuncts)"
                   name
                   (List.length u.Logic.Ucq.disjuncts))
          | P.Rewriting | P.Key_rewriting | P.Datalog ->
              (* Refuse rather than silently running a different (and
                 differently priced) algorithm than the one requested —
                 and let the analyzer name the condition that fails. *)
              P.err
                (Printf.sprintf "method=%s not applicable to %S: %s"
                   (method_label method_) name
                   (Analysis.Classify.ucq_rewriting_diagnostic
                      session.doc.ics u))
          | P.Auto | P.Enum | P.Asp ->
              let m =
                match method_ with P.Asp -> `Asp | _ -> `Repair_enumeration
              in
              let rows =
                Cqa.Engine.consistent_answers_ucq ~method_:m session.engine u
              in
              P.ok ~body:(List.map pp_row rows)
                (Printf.sprintf "answers=%d" (List.length rows))))

let query_cache_key (session : Session.t) name method_ semantics =
  String.concat "|"
    [
      session.digest; "query"; name; method_label method_;
      semantics_label semantics;
    ]

(* The plan branch a QUERY/EXPLAIN executes: the auto route for
   method=auto, the forced method's branch otherwise.  Shared by the
   EXPLAIN plan section and by workload attribution. *)
let branch_of (session : Session.t) (u : Logic.Ucq.t) method_ semantics =
  match u.Logic.Ucq.disjuncts with
  | [ q ] -> (
      match (semantics, method_) with
      | P.C, _ -> "asp_c"
      | P.S, P.Auto ->
          Cqa.Engine.route_label
            (Cqa.Engine.plan session.engine q).Cqa.Engine.route
      | P.S, P.Enum -> "repair_enumeration"
      | P.S, P.Rewriting -> "residue_rewriting"
      | P.S, P.Key_rewriting -> "key_rewriting"
      | P.S, P.Datalog -> "datalog_rewriting"
      | P.S, P.Asp -> "asp"
      | P.S, P.Sat -> "sat_compilation")
  | _ -> (
      match (semantics, method_) with
      | P.C, _ -> "asp_c"
      | P.S, P.Asp -> "asp"
      | P.S, _ -> "repair_enumeration")

(* Workload identity of a QUERY/EXPLAIN: semantics-qualified fingerprint
   (Cqa.Fingerprint — canonical variable renaming, constants abstracted)
   and plan branch.  Memoized because the branch requires a classifier
   pass — but NOT under the data digest: the fingerprint depends only on
   the query definition and the branch only on the query and the ICs, so
   a row UPDATE must not invalidate the memo (re-planning after every
   update would price attribution at a classifier pass per query).  The
   doc's [queries]/[ics] lists keep their physical identity across row
   updates and are rebuilt by LOAD, which is exactly the invalidation
   the memo needs.  Reset rather than evicted when it grows (it is tiny
   relative to its keys). *)
let fp_branch t (session : Session.t) name method_ semantics =
  let key =
    String.concat "|"
      [ session.id; name; method_label method_; semantics_label semantics ]
  in
  let queries = session.doc.queries and ics = session.doc.ics in
  match Hashtbl.find_opt t.fp_memo key with
  | Some (q0, i0, fb) when q0 == queries && i0 == ics -> fb
  | _ ->
      let fb =
        match Cqa.Parse.find_ucq session.doc name with
        | exception Not_found ->
            (semantics_label semantics ^ ":unknown:" ^ name, "service")
        | u ->
            ( semantics_label semantics ^ ":" ^ Cqa.Fingerprint.ucq u,
              branch_of session u method_ semantics )
      in
      if Hashtbl.length t.fp_memo > 4096 then Hashtbl.reset t.fp_memo;
      Hashtbl.replace t.fp_memo key (queries, ics, fb);
      fb

(* Every command gets a workload identity so the store attributes ~all
   request wall time: queries by shape x plan branch, everything else
   under its command label on the "service" branch. *)
let workload_identity t command =
  match command with
  | P.Query { sid; name; method_; semantics; _ }
  | P.Explain { sid; name; method_; semantics; _ } -> (
      match Session.find t.sessions sid with
      | None -> (String.lowercase_ascii (P.command_label command), "service")
      | Some session ->
          let fp, branch = fp_branch t session name method_ semantics in
          let fp =
            match command with P.Explain _ -> "explain:" ^ fp | _ -> fp
          in
          (fp, branch))
  | P.Repairs { semantics; _ } ->
      ("repairs:" ^ semantics_label semantics, "service")
  | c -> (String.lowercase_ascii (P.command_label c), "service")

(* The plan section of EXPLAIN: the Engine.plan branch the request
   executes (direct / key_rewriting / sat_compilation /
   repair_enumeration, or the forced method's branch) and the
   classifier's verdict.  Emitted on every successful EXPLAIN whatever
   the method, semantics, or cache state. *)
let plan_lines (session : Session.t) name method_ semantics =
  match Cqa.Parse.find_ucq session.doc name with
  | exception Not_found -> []
  | u -> (
      match u.Logic.Ucq.disjuncts with
      | [ q ] ->
          let p = Cqa.Engine.plan session.engine q in
          let branch =
            match (semantics, method_) with
            | P.C, _ -> "asp_c"
            | P.S, P.Auto -> Cqa.Engine.route_label p.Cqa.Engine.route
            | P.S, P.Enum -> "repair_enumeration"
            | P.S, P.Rewriting -> "residue_rewriting"
            | P.S, P.Key_rewriting -> "key_rewriting"
            | P.S, P.Datalog -> "datalog_rewriting"
            | P.S, P.Asp -> "asp"
            | P.S, P.Sat -> "sat_compilation"
          in
          [
            "-- plan";
            Printf.sprintf "branch %s" branch;
            Printf.sprintf "verdict %s witness %s"
              (Analysis.Classify.verdict_label
                 p.Cqa.Engine.classification.Analysis.Classify.verdict)
              (Analysis.Classify.witness_code
                 p.Cqa.Engine.classification.Analysis.Classify.witness);
            Printf.sprintf "auto_route %s"
              (Cqa.Engine.route_label p.Cqa.Engine.route);
          ]
      | disjuncts ->
          let c = Analysis.Classify.classify_ucq session.doc.ics u in
          let branch =
            match (semantics, method_) with
            | P.C, _ -> "asp_c"
            | P.S, P.Asp -> "asp"
            | P.S, _ -> "repair_enumeration"
          in
          [
            "-- plan";
            Printf.sprintf "branch %s (union query, %d disjuncts)" branch
              (List.length disjuncts);
            Printf.sprintf "verdict %s witness %s"
              (Analysis.Classify.verdict_label c.Analysis.Classify.verdict)
              (Analysis.Classify.witness_code c.Analysis.Classify.witness);
          ])

(* EXPLAIN runs the query fresh under a private trace sink and reports
   what it cost: whether an equivalent QUERY would be answered from the
   memo cache, the span tree, and the solver-counter deltas.  It never
   reads or fills the cache itself, so the measurement is repeatable. *)
let exec_explain t (session : Session.t) name method_ semantics =
  let key = query_cache_key session name method_ semantics in
  let cache_state = if Lru.mem t.cache key then "hit" else "miss" in
  let registry = Metrics.registry t.metrics in
  let before = Obs.Registry.counter_snapshot registry in
  let t0 = Unix.gettimeofday () in
  let response, spans =
    Obs.Trace.collect (fun () -> exec_query session name method_ semantics)
  in
  let wall = Unix.gettimeofday () -. t0 in
  match response with
  | { P.status = `Err; _ } -> response
  | { P.status = `Ok; head; _ } ->
      let deltas = Obs.Registry.counter_delta ~since:before registry in
      (* The static side of the story: the classifier's verdict, witness
         and auto-route for the query, so every explained answer carries
         its justification next to the measured cost. *)
      let analysis =
        match Cqa.Analyze.query_lines session.doc name with
        | lines -> "-- analysis" :: lines
        | exception Not_found -> []
      in
      (* When the dispatcher armed a progress context, its flight
         recorder holds the request's heartbeat trail — phase
         transitions and work counts with relative timestamps. *)
      let progress =
        match Obs.Progress.active () with
        | None -> []
        | Some c -> "-- progress" :: Obs.Progress.history_lines c
      in
      let body =
        Printf.sprintf "cache %s key=%s" cache_state key
        :: (plan_lines session name method_ semantics @ analysis)
        @ ("-- spans" :: Obs.Export.tree spans)
        @ ("-- counters"
          :: List.map (fun (n, v) -> Printf.sprintf "%s %d" n v) deltas)
        @ progress
      in
      P.ok ~body
        (Printf.sprintf "explain %s wall_us=%.1f spans=%d" head (wall *. 1e6)
           (List.length spans))

let exec_check (session : Session.t) =
  let witnesses =
    Constraints.Violation.all session.doc.instance session.doc.schema
      session.doc.ics
  in
  if witnesses = [] then P.ok "consistent"
  else P.ok (Printf.sprintf "inconsistent violations=%d" (List.length witnesses))

let exec_repairs (session : Session.t) semantics =
  let count =
    match semantics with
    | P.S ->
        Repairs.Count.s_repairs session.doc.instance session.doc.schema
          session.doc.ics
    | P.C ->
        Repairs.Count.c_repairs session.doc.instance session.doc.schema
          session.doc.ics
  in
  P.ok (Printf.sprintf "count=%d" count)

let exec_analyze (session : Session.t) name =
  match name with
  | Some name -> (
      match Cqa.Analyze.query_lines session.doc name with
      | lines ->
          P.ok ~body:lines
            (Printf.sprintf "analyze query=%s lines=%d" name (List.length lines))
      | exception Not_found ->
          P.err
            (Printf.sprintf "no query named %S in session %S" name session.id))
  | None ->
      let report = Cqa.Analyze.document session.doc in
      let body = Cqa.Analyze.lines report in
      P.ok ~body
        (Printf.sprintf "analyze queries=%d errors=%s lines=%d"
           (List.length report.Cqa.Analyze.queries)
           (if Cqa.Analyze.has_errors report then "yes" else "no")
           (List.length body))

let exec_measure (session : Session.t) =
  let measures =
    Measures.Degree.all session.doc.instance session.doc.schema
      session.doc.ics
  in
  P.ok
    ~body:(List.map (fun (name, x) -> Printf.sprintf "%s %.4f" name x) measures)
    (Printf.sprintf "measures=%d" (List.length measures))

let exec t payload = function
  | P.Load sid -> (
      let text = String.concat "\n" (Option.value ~default:[] payload) in
      match Cqa.Parse.document_of_string text with
      | exception Cqa.Parse.Error (line, msg) ->
          P.err (Printf.sprintf "payload line %d: %s" line msg)
      | exception Invalid_argument msg -> P.err ("payload: " ^ msg)
      | doc ->
          (* On re-LOAD the replaced session's entries would linger in
             the cache untracked by any session; drop them now. *)
          (match Session.find t.sessions sid with
          | Some old -> List.iter (Lru.remove t.cache) (Session.take_keys old)
          | None -> ());
          let _session = Session.load t.sessions ~id:sid doc in
          P.ok
            (Printf.sprintf "loaded session=%s facts=%d ics=%d queries=%d" sid
               (Relational.Instance.size doc.instance)
               (List.length doc.ics)
               (List.length doc.queries)))
  | P.Query { sid; name; method_; semantics; _ } ->
      with_session t sid (fun session ->
          let key = query_cache_key session name method_ semantics in
          cached t session key (fun () -> exec_query session name method_ semantics))
  | P.Trace flag ->
      Obs.Trace.set_enabled flag;
      P.ok (if flag then "trace=on" else "trace=off")
  | P.Explain { sid; name; method_; semantics; _ } ->
      with_session t sid (fun session ->
          exec_explain t session name method_ semantics)
  | P.Check sid -> with_session t sid exec_check
  | P.Repairs { sid; semantics } ->
      with_session t sid (fun session ->
          let key =
            String.concat "|"
              [ session.digest; "repairs"; semantics_label semantics ]
          in
          cached t session key (fun () -> exec_repairs session semantics))
  | P.Measure sid ->
      with_session t sid (fun session ->
          let key = String.concat "|" [ session.digest; "measure" ] in
          cached t session key (fun () -> exec_measure session))
  | P.Analyze { sid; name } ->
      with_session t sid (fun session ->
          (* Analysis is pure in the document, so it memoizes under the
             digest like any query. *)
          let key =
            String.concat "|"
              [ session.digest; "analyze"; Option.value ~default:"*" name ]
          in
          cached t session key (fun () -> exec_analyze session name))
  | P.Update { sid; op; rel; values } ->
      with_session t sid (fun session ->
          match Session.apply_update session ~op ~rel values with
          | Error msg -> P.err msg
          | Ok () ->
              (* The digest changed, so stale entries can no longer be
                 hit; dropping them eagerly also frees cache room. *)
              List.iter (Lru.remove t.cache) (Session.take_keys session);
              P.ok
                (Printf.sprintf "size=%d"
                   (Relational.Instance.size session.doc.instance)))
  | P.Stats ->
      sample_gauges t;
      let workload =
        match t.stats with
        | None -> []
        | Some stats ->
            ("-- workload" :: Obs.Stats.summary_lines stats)
            @ (match t.sampler with
              | None -> []
              | Some s ->
                  [
                    Printf.sprintf "workload.tail_kept %d" (Obs.Sampler.kept s);
                    Printf.sprintf "workload.tail_overwritten %d"
                      (Obs.Sampler.overwritten s);
                    Printf.sprintf "workload.tail_seen %d" (Obs.Sampler.seen s);
                  ])
      in
      let body =
        Printf.sprintf "sessions %d" (Session.count t.sessions)
        :: Printf.sprintf "cache_entries %d" (Lru.length t.cache)
        :: Printf.sprintf "cache_evictions %d" (Lru.evictions t.cache)
        :: Metrics.render t.metrics
        @ workload
      in
      P.ok ~body (Printf.sprintf "stats=%d" (List.length body))
  | P.Workload mode -> (
      match t.stats with
      | None ->
          P.err "workload stats disabled (start the server with --workload)"
      | Some stats -> (
          match mode with
          | `Summary ->
              let body =
                Obs.Stats.summary_lines stats
                @
                match t.sampler with
                | None -> []
                | Some s ->
                    [
                      Printf.sprintf "workload.tail_kept %d"
                        (Obs.Sampler.kept s);
                      Printf.sprintf "workload.tail_seen %d"
                        (Obs.Sampler.seen s);
                    ]
              in
              P.ok ~body
                (Printf.sprintf "workload recorded=%d fingerprints=%d"
                   (Obs.Stats.recorded stats)
                   (Obs.Stats.length stats))
          | `Top n ->
              P.ok
                ~body:(Obs.Stats.render_top stats n)
                (Printf.sprintf "workload top=%d of %d" n
                   (Obs.Stats.length stats))
          | `By_branch ->
              P.ok
                ~body:(Obs.Stats.render_by_branch stats)
                "workload by branch"
          | `Reset ->
              Obs.Stats.reset stats;
              (match t.sampler with
              | Some s -> Obs.Sampler.clear s
              | None -> ());
              P.ok "workload reset"))
  | P.Metrics ->
      let body =
        String.split_on_char '\n' (metrics_text t)
        |> List.filter (fun l -> l <> "")
      in
      P.ok ~body (Printf.sprintf "metrics lines=%d" (List.length body))
  | P.Inflight ->
      (* One line per live context.  The single-threaded loop answers
         INFLIGHT between requests, so over a socket this mostly shows
         work running on Par worker domains and nested dispatches; the
         same table feeds the inflight.* gauges and the signal-time
         flight-recorder dump, where it captures whatever the signal
         interrupted. *)
      let now = t.clock () in
      let ctxs = Obs.Progress.inflight () in
      P.ok
        ~body:(List.map (Obs.Progress.describe ~now) ctxs)
        (Printf.sprintf "inflight=%d" (List.length ctxs))
  | P.Close sid ->
      if Session.close t.sessions sid then P.ok (Printf.sprintf "closed %s" sid)
      else P.err (Printf.sprintf "unknown session %S" sid)
  | P.Quit -> P.ok "bye"

(* Commands whose execution is worth a span tree: the ones that touch a
   session's engine.  The control commands stay unwrapped — notably
   TRACE, whose toggle [Obs.Trace.collect] would silently undo when it
   restores the enabled flag. *)
let traceable = function
  | P.Load _ | P.Query _ | P.Check _ | P.Repairs _ | P.Measure _
  | P.Update _ | P.Explain _ | P.Analyze _ ->
      true
  | P.Stats | P.Metrics | P.Trace _ | P.Workload _ | P.Inflight | P.Close _
  | P.Quit ->
      false

let sid_of = function
  | P.Load sid
  | P.Check sid
  | P.Measure sid
  | P.Close sid
  | P.Query { sid; _ }
  | P.Repairs { sid; _ }
  | P.Update { sid; _ }
  | P.Explain { sid; _ }
  | P.Analyze { sid; _ } ->
      Some sid
  | P.Stats | P.Metrics | P.Trace _ | P.Workload _ | P.Inflight | P.Quit ->
      None

let emit_request_event t ~rid ~command ~response ~latency =
  match t.events with
  | None -> ()
  | Some sink ->
      let open Obs.Events in
      let fields =
        [
          ("command", Str (P.command_label command));
          ( "status",
            Str (match response.P.status with `Ok -> "ok" | `Err -> "err") );
          ("head", Str response.P.head);
          ("wall_us", Float (latency *. 1e6));
        ]
        @ match sid_of command with Some sid -> [ ("sid", Str sid) ] | None -> []
      in
      emit sink ~req:rid ~fields "request"

(* The slow-query record: everything EXPLAIN would have shown, captured
   after the fact — the span tree the request actually executed and the
   solver-counter deltas it caused. *)
let emit_slow_event t ~rid ~command ~latency ~spans ~deltas ~progress =
  match t.events with
  | None -> ()
  | Some sink ->
      let open Obs.Events in
      let json_list xs =
        "[" ^ String.concat "," (List.map Obs.Export.json_string xs) ^ "]"
      in
      let counters =
        "{"
        ^ String.concat ","
            (List.map
               (fun (n, v) ->
                 Printf.sprintf "%s:%d" (Obs.Export.json_string n) v)
               deltas)
        ^ "}"
      in
      let fields =
        [
          ("command", Str (P.command_label command));
          ("wall_us", Float (latency *. 1e6));
          ("spans", Raw (json_list (Obs.Export.tree spans)));
          ("counters", Raw counters);
        ]
        @ (match progress with
          | [] -> []
          | lines -> [ ("progress", Raw (json_list lines)) ])
        @ match sid_of command with Some sid -> [ ("sid", Str sid) ] | None -> []
      in
      emit sink ~req:rid ~fields "slow_query"

let dispatch t ?payload command =
  incr t.next_rid;
  let rid = !(t.next_rid) in
  let registry = Metrics.registry t.metrics in
  (* The slow-query log, the workload store (phase attribution, counter
     deltas) and the tail sampler all want the request's span tree, so
     any of them arms the private collection. *)
  let collecting =
    (t.slow_s <> None || t.stats <> None || t.sampler <> None)
    && traceable command
  in
  let before =
    if collecting then begin
      let b =
        Obs.Registry.counter_baseline ?reuse:t.baseline_scratch registry
      in
      t.baseline_scratch <- Some b;
      Some b
    end
    else None
  in
  t.last_cache <- Obs.Stats.Uncached;
  let t0 = t.clock () in
  (* Per-request deadline: an explicit timeout= wins; the server default
     covers every other session-touching command (REPAIRS and MEASURE
     blow up on the same instances QUERY does). *)
  let deadline_s =
    let explicit =
      match command with
      | P.Query { timeout_ms; _ } | P.Explain { timeout_ms; _ } -> timeout_ms
      | _ -> None
    in
    match explicit with
    | Some ms -> Some (ms /. 1e3)
    | None -> t.default_timeout_s
  in
  let ctx =
    if t.progress && traceable command then
      Some
        (Obs.Progress.create ?deadline_s ~clock:t.clock ~now:t0
           ?session:(sid_of command)
           ~label:(P.command_label command) ~id:rid ())
    else None
  in
  let run () =
    match ctx with
    | None -> (
        try exec t payload command
        with e -> P.err (Printf.sprintf "internal: %s" (Printexc.to_string e)))
    | Some c -> (
        try Obs.Progress.run c (fun () -> exec t payload command) with
        | Obs.Progress.Deadline_exceeded ->
            (* Structured deadline answer carrying the final snapshot,
               so the client sees where the budget went. *)
            let s = Obs.Progress.snapshot c in
            P.err
              (Printf.sprintf
                 "deadline budget_ms=%.0f elapsed_ms=%.0f branch=%s phase=%s \
                  work=%d bound=%s"
                 (match Obs.Progress.budget_s c with
                 | Some b -> b *. 1e3
                 | None -> 0.0)
                 (Obs.Progress.elapsed ~now:(t.clock ()) c *. 1e3)
                 (Obs.Progress.branch c) s.Obs.Progress.s_phase
                 s.Obs.Progress.s_work
                 (Obs.Progress.pp_bound s.Obs.Progress.s_bound))
        | e -> P.err (Printf.sprintf "internal: %s" (Printexc.to_string e)))
  in
  let response, collected =
    if collecting then
      let r, spans =
        Obs.Trace.collect (fun () ->
            Obs.Trace.with_span
              ~attrs:
                [
                  ("req", string_of_int rid);
                  ("command", P.command_label command);
                ]
              "request" run)
      in
      (r, Some spans)
    else (run (), None)
  in
  let latency = t.clock () -. t0 in
  Metrics.observe t.metrics ~command:(P.command_label command) ~latency;
  if response.P.status = `Err then Metrics.error t.metrics;
  emit_request_event t ~rid ~command ~response ~latency;
  let deltas =
    lazy
      (match before with
      | Some b -> Obs.Registry.counter_delta_since b registry
      | None -> [])
  in
  (match (t.slow_s, collected) with
  | Some thr, Some spans when latency > thr ->
      emit_slow_event t ~rid ~command ~latency ~spans
        ~deltas:(Lazy.force deltas)
        ~progress:
          (match ctx with
          | Some c -> Obs.Progress.history_lines c
          | None -> [])
  | _ -> ());
  (* Fold the request into the workload store — every command, so the
     store attributes (approximately) all request wall time. *)
  (match t.stats with
  | None -> ()
  | Some stats ->
      let fingerprint, branch = workload_identity t command in
      let phases =
        match collected with
        | Some spans -> Obs.Stats.phases_of_spans spans
        | None -> []
      in
      let counters = if collecting then Lazy.force deltas else [] in
      Obs.Stats.record stats ~fingerprint ~branch ~wall_s:latency
        ~rows:(List.length response.P.body)
        ~cache:t.last_cache
        ~error:(response.P.status = `Err)
        ~phases ~counters ());
  (* Offer the span tree to the tail sampler; discarded unless the
     request erred, ran over the threshold, or fell on the sampling
     grid. *)
  (match t.sampler with
  | None -> ()
  | Some sampler ->
      ignore
        (Obs.Sampler.offer sampler ~rid ~command:(P.command_label command)
           ~wall_s:latency
           ~ok:(response.P.status = `Ok)
           (Option.value ~default:[] collected)));
  (* When server-wide tracing is on, hand the spans this request left to
     the owner (cqa_server streams them to disk).  With the slow-query
     log armed they were captured privately; otherwise they sit in the
     global sink. *)
  (match t.on_trace with
  | Some f when Obs.Trace.is_enabled () -> (
      match collected with
      | Some spans -> if spans <> [] then f spans
      | None -> ( match Obs.Trace.drain () with [] -> () | spans -> f spans))
  | _ -> ());
  P.clamp ~max_lines:t.max_body_lines response

let parse_failure t msg =
  Metrics.parse_error t.metrics;
  Metrics.error t.metrics;
  P.err msg

let handle_line t ?payload line =
  match P.parse line with
  | Ok command -> dispatch t ?payload command
  | Error msg -> parse_failure t msg
