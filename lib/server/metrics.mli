(** Request metrics for the serving layer: request and error counters,
    cache hits/misses, per-command latency histograms, and bytes moved on
    the wire.

    Built on {!Obs.Registry}: the handler installs its metrics registry
    as the process-current one, so the solver counters threaded through
    [lib/obs] (sat.dpll.decisions, cavsat.sat_calls, repairs.candidates,
    ...) land in the same
    registry and render through the same [render] (the STATS command and
    the server's [--metrics-dump] flag). *)

type t

val create : ?registry:Obs.Registry.t -> unit -> t
(** A metrics value over [registry] (a fresh private registry by
    default, which keeps tests isolated). *)

val registry : t -> Obs.Registry.t
(** The underlying registry — install with {!Obs.Registry.set_current}
    to route solver counters here. *)

val observe : t -> command:string -> latency:float -> unit
(** Count one completed request of kind [command] (e.g. ["QUERY"]) that
    took [latency] seconds; feeds the [latency_<command>] histogram. *)

val parse_error : t -> unit
(** Count a request line that failed to parse. *)

val error : t -> unit
(** Count a request answered with [ERR]. *)

val cache_hit : t -> unit
val cache_miss : t -> unit
val add_bytes_in : t -> int -> unit
val add_bytes_out : t -> int -> unit

val requests : t -> int
val errors : t -> int
val hits : t -> int
val misses : t -> int
val bytes_in : t -> int
val bytes_out : t -> int

val hit_rate : t -> float
(** Hits over hits+misses; 0 before any cacheable request. *)

val render : t -> string list
(** One [name value] line per counter and gauge in the registry (request
    scalars and any solver counters routed here), a [cache_hit_rate]
    line, and one
    [latency_<command> count=<n> mean_us=<m> p50_us=<a> p95_us=<b>
    p99_us=<c> hist=lt_1us:<k>,...] line per command seen; histogram
    buckets are decades from 1 µs to 10 s plus an overflow bucket, each
    labelled with its bound.  Lines are merged and sorted by metric
    name, so the output order is deterministic. *)
