(** Request metrics for the serving layer: request and error counters,
    cache hits/misses, per-command latency histograms, and bytes moved on
    the wire.  Rendered as one [name value] line per metric by [render]
    (the STATS command and the server's [--metrics-dump] flag). *)

type t

val create : unit -> t

val observe : t -> command:string -> latency:float -> unit
(** Count one completed request of kind [command] (e.g. ["QUERY"]) that
    took [latency] seconds; feeds the per-command histogram. *)

val parse_error : t -> unit
(** Count a request line that failed to parse. *)

val error : t -> unit
(** Count a request answered with [ERR]. *)

val cache_hit : t -> unit
val cache_miss : t -> unit
val add_bytes_in : t -> int -> unit
val add_bytes_out : t -> int -> unit

val requests : t -> int
val errors : t -> int
val hits : t -> int
val misses : t -> int
val bytes_in : t -> int
val bytes_out : t -> int

val hit_rate : t -> float
(** Hits over hits+misses; 0 before any cacheable request. *)

val render : t -> string list
(** One [name value] line per counter, then one
    [latency_<command> count=<n> mean_us=<m> hist=<b0,b1,...>] line per
    command seen; histogram buckets are decades from 1 µs to 10 s plus
    an overflow bucket. *)
