module P = Protocol

(* Per-connection state.  [payload] is set while a LOAD's document lines
   are being collected (session id, lines in reverse). *)
type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  mutable out : string;
  mutable payload : (string * string list) option;
  mutable closing : bool; (* QUIT seen: close once output drains *)
}

(* A metrics-port connection: a minimal HTTP/1.0 exchange — read one
   request head, write one response, close. *)
type http_conn = {
  hfd : Unix.file_descr;
  hinbuf : Buffer.t;
  mutable hout : string;
  mutable responded : bool;
}

type t = {
  listen_fd : Unix.file_descr;
  metrics_fd : Unix.file_descr option;
  handler : Handler.t;
  mutable conns : conn list;
  mutable hconns : http_conn list;
  mutable stopped : bool;
}

let create ?cache_capacity ?max_body_lines ?on_trace ?events ?slow_ms ?stats
    ?sampler ?default_timeout_ms ?(progress = true) ?version ?clock ?metrics_fd
    listen_fd =
  Unix.set_nonblock listen_fd;
  Option.iter Unix.set_nonblock metrics_fd;
  {
    listen_fd;
    metrics_fd;
    handler =
      Handler.create ?cache_capacity ?max_body_lines ?on_trace ?events
        ?slow_ms ?stats ?sampler ?default_timeout_ms ~progress ?version ?clock
        ();
    conns = [];
    hconns = [];
    stopped = false;
  }

let handler t = t.handler
let connections t = List.length t.conns

let close_conn t conn =
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  t.conns <- List.filter (fun c -> c != conn) t.conns

let enqueue t conn response =
  let text = P.render response in
  Metrics.add_bytes_out (Handler.metrics t.handler) (String.length text);
  conn.out <- conn.out ^ text

(* One complete request line (without its newline). *)
let process_line t conn line =
  match conn.payload with
  | Some (sid, acc) ->
      if String.trim line = P.terminator then begin
        conn.payload <- None;
        enqueue t conn
          (Handler.dispatch t.handler ~payload:(List.rev acc) (P.Load sid))
      end
      else conn.payload <- Some (sid, line :: acc)
  | None -> (
      if String.trim line = "" then () (* blank lines between requests ok *)
      else
        match P.parse line with
        | Ok (P.Load sid) -> conn.payload <- Some (sid, [])
        | Ok P.Quit ->
            enqueue t conn (Handler.dispatch t.handler P.Quit);
            conn.closing <- true
        | Ok command -> enqueue t conn (Handler.dispatch t.handler command)
        | Error msg -> enqueue t conn (Handler.parse_failure t.handler msg))

(* Split off every complete line accumulated in [inbuf]. *)
let drain_lines conn =
  let s = Buffer.contents conn.inbuf in
  let rec go start acc =
    match String.index_from_opt s start '\n' with
    | None ->
        Buffer.clear conn.inbuf;
        Buffer.add_substring conn.inbuf s start (String.length s - start);
        List.rev acc
    | Some i ->
        let line = String.sub s start (i - start) in
        let line =
          (* Tolerate CRLF clients (telnet, netcat -C). *)
          if line <> "" && line.[String.length line - 1] = '\r' then
            String.sub line 0 (String.length line - 1)
          else line
        in
        go (i + 1) (line :: acc)
  in
  go 0 []

let read_conn t conn =
  let bytes = Bytes.create 4096 in
  let rec read_all () =
    match Unix.read conn.fd bytes 0 (Bytes.length bytes) with
    | 0 -> close_conn t conn
    | n ->
        Metrics.add_bytes_in (Handler.metrics t.handler) n;
        Buffer.add_subbytes conn.inbuf bytes 0 n;
        read_all ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> close_conn t conn
  in
  read_all ();
  (* Only process lines if the connection survived the read. *)
  if List.memq conn t.conns then
    List.iter (process_line t conn) (drain_lines conn)

let write_conn t conn =
  (match
     Unix.write_substring conn.fd conn.out 0 (String.length conn.out)
   with
  | n -> conn.out <- String.sub conn.out n (String.length conn.out - n)
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> close_conn t conn);
  if List.memq conn t.conns && conn.closing && conn.out = "" then
    close_conn t conn

let accept_all t =
  let rec go n =
    match Unix.accept t.listen_fd with
    | fd, _ ->
        Unix.set_nonblock fd;
        t.conns <-
          {
            fd;
            inbuf = Buffer.create 256;
            out = "";
            payload = None;
            closing = false;
          }
          :: t.conns;
        go (n + 1)
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> n
  in
  go 0

(* ---- the metrics HTTP listener --------------------------------------- *)

let http_response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    status content_type (String.length body) body

let close_hconn t hc =
  (try Unix.close hc.hfd with Unix.Unix_error _ -> ());
  t.hconns <- List.filter (fun c -> c != hc) t.hconns

let accept_http t fd =
  let rec go n =
    match Unix.accept fd with
    | hfd, _ ->
        Unix.set_nonblock hfd;
        t.hconns <-
          { hfd; hinbuf = Buffer.create 256; hout = ""; responded = false }
          :: t.hconns;
        go (n + 1)
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> n
  in
  go 0

(* Answer as soon as the request line is complete; the rest of the head
   is irrelevant to a metrics endpoint. *)
let http_respond t hc =
  match String.index_opt (Buffer.contents hc.hinbuf) '\n' with
  | None -> ()
  | Some i ->
      let line = String.trim (String.sub (Buffer.contents hc.hinbuf) 0 i) in
      hc.responded <- true;
      hc.hout <-
        (match String.split_on_char ' ' line with
        | [ ("GET" | "HEAD"); path; _ ] -> (
            match String.split_on_char '?' path with
            | ("/metrics" | "/") :: _ ->
                http_response ~status:"200 OK"
                  ~content_type:"text/plain; version=0.0.4; charset=utf-8"
                  (Handler.metrics_text t.handler)
            | "/healthz" :: _ ->
                http_response ~status:"200 OK" ~content_type:"text/plain"
                  "ok\n"
            | _ ->
                http_response ~status:"404 Not Found"
                  ~content_type:"text/plain" "not found\n")
        | _ ->
            http_response ~status:"400 Bad Request" ~content_type:"text/plain"
              "bad request\n")

let read_hconn t hc =
  let bytes = Bytes.create 1024 in
  (match Unix.read hc.hfd bytes 0 (Bytes.length bytes) with
  | 0 -> close_hconn t hc
  | n -> Buffer.add_subbytes hc.hinbuf bytes 0 n
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> close_hconn t hc);
  if List.memq hc t.hconns && not hc.responded then http_respond t hc

let write_hconn t hc =
  (match Unix.write_substring hc.hfd hc.hout 0 (String.length hc.hout) with
  | n -> hc.hout <- String.sub hc.hout n (String.length hc.hout - n)
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> close_hconn t hc);
  if List.memq hc t.hconns && hc.responded && hc.hout = "" then
    close_hconn t hc

let step ?(timeout = 0.0) t =
  let reads =
    t.listen_fd
    :: (Option.to_list t.metrics_fd
       @ List.map (fun c -> c.fd) t.conns
       @ List.map (fun c -> c.hfd) t.hconns)
  in
  let writes =
    List.filter_map (fun c -> if c.out <> "" then Some c.fd else None) t.conns
    @ List.filter_map
        (fun c -> if c.hout <> "" then Some c.hfd else None)
        t.hconns
  in
  match Unix.select reads writes [] timeout with
  | exception Unix.Unix_error (EINTR, _, _) -> 0
  | readable, writable, _ ->
      let serviced = ref 0 in
      if List.memq t.listen_fd readable then
        serviced := !serviced + accept_all t;
      (match t.metrics_fd with
      | Some fd when List.memq fd readable ->
          serviced := !serviced + accept_http t fd
      | _ -> ());
      List.iter
        (fun conn ->
          if List.mem conn.fd readable then begin
            incr serviced;
            read_conn t conn
          end)
        t.conns;
      List.iter
        (fun hc ->
          if List.mem hc.hfd readable then begin
            incr serviced;
            read_hconn t hc
          end)
        t.hconns;
      List.iter
        (fun conn ->
          if List.mem conn.fd writable && List.memq conn t.conns then begin
            incr serviced;
            write_conn t conn
          end)
        t.conns;
      List.iter
        (fun hc ->
          if List.mem hc.hfd writable && List.memq hc t.hconns then begin
            incr serviced;
            write_hconn t hc
          end)
        t.hconns;
      !serviced

let stop t = t.stopped <- true

let run ?max_requests ?(gauge_interval = 5.0) t =
  let budget_left () =
    match max_requests with
    | None -> true
    | Some n -> Metrics.requests (Handler.metrics t.handler) < n
  in
  Handler.sample_gauges t.handler;
  let next_sample = ref (Unix.gettimeofday () +. gauge_interval) in
  while (not t.stopped) && budget_left () do
    ignore (step ~timeout:0.5 t);
    let now = Unix.gettimeofday () in
    if now >= !next_sample then begin
      Handler.sample_gauges t.handler;
      next_sample := now +. gauge_interval
    end
  done;
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) t.conns;
  t.conns <- [];
  List.iter
    (fun c -> try Unix.close c.hfd with Unix.Unix_error _ -> ())
    t.hconns;
  t.hconns <- [];
  (match t.metrics_fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  try Unix.close t.listen_fd with Unix.Unix_error _ -> ()

let listen_unix path =
  (* Reclaim only a leftover socket; anything else at that path is not
     ours to delete. *)
  (match Unix.stat path with
  | { Unix.st_kind = S_SOCK; _ } -> Unix.unlink path
  | _ ->
      failwith
        (Printf.sprintf "listen_unix: %s exists and is not a socket" path)
  | exception Unix.Unix_error (ENOENT, _, _) -> ());
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.bind fd (ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let listen_tcp ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt fd SO_REUSEADDR true;
  Unix.bind fd (ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen fd 64;
  let actual =
    match Unix.getsockname fd with
    | ADDR_INET (_, p) -> p
    | _ -> port
  in
  (fd, actual)
