(** Request execution over a session store, with memoization and metrics.

    Certain answers (QUERY), repair counts (REPAIRS) and inconsistency
    measures (MEASURE) are memoized in a shared capacity-bounded
    {!Lru} cache keyed by instance digest × semantics/method × query, so
    equal data loaded under different session ids shares entries.  An
    UPDATE rewrites the session's digest {e and} eagerly drops the
    entries inserted on the session's behalf.  CHECK is answered
    directly — it is the cheap baseline the cache is measured against.

    Execution failures (unknown session, unknown query, inapplicable
    method, malformed payloads) are returned as [ERR] responses; they
    never raise, so a misbehaving request cannot kill the session or the
    connection that sent it. *)

type t

val create :
  ?cache_capacity:int ->
  ?max_body_lines:int ->
  ?on_trace:(Obs.Trace.span list -> unit) ->
  ?events:Obs.Events.sink ->
  ?slow_ms:float ->
  ?stats:Obs.Stats.t ->
  ?sampler:Obs.Sampler.t ->
  ?default_timeout_ms:float ->
  ?progress:bool ->
  ?version:string ->
  ?clock:(unit -> float) ->
  unit ->
  t
(** [cache_capacity] defaults to 512 entries.  [max_body_lines] bounds
    every response body (see {!Protocol.clamp}; default 10,000 lines).
    [on_trace] receives the spans each request leaves in the global sink
    while TRACE is on (the server streams them to [--trace-dir]).

    [events] is the structured JSONL event log: every request emits a
    ["request"] record carrying its id, command, status and latency.
    [slow_ms] arms the slow-query log — session-touching commands run
    under a private span collection (which, like [--trace-dir], forces
    sequential execution), and any request over the threshold emits a
    ["slow_query"] record with the span tree and counter deltas.
    [clock] (default [Unix.gettimeofday]) is what latencies are measured
    with; tests stub it.

    [stats] arms workload introspection: every finished request is
    folded into the {!Obs.Stats} store under its query fingerprint
    ([Cqa.Fingerprint], qualified by semantics) and plan branch — other
    commands under their command label on the ["service"] branch — with
    cache outcome, rows, per-phase time from the span tree, and solver
    counter deltas.  Read back with the WORKLOAD command, the
    [-- workload] STATS section, and the [cqa_workload_*] metrics
    families.  [sampler] arms tail-sampled tracing: each request's span
    tree is offered to the {!Obs.Sampler} ring and retained only for
    error, over-threshold, or reservoir-sampled requests.  Either one
    (like [slow_ms]) runs session-touching commands under the private
    span collection.  [version] labels the [cqa_build_info] gauge.

    [progress] (default [false]) arms an {!Obs.Progress} context around
    every session-touching request: solver heartbeats feed the INFLIGHT
    command, the [inflight.*] gauges, a per-request flight recorder
    (dumped by EXPLAIN and the slow-query log), and cooperative
    deadlines — a request whose [timeout=ms] option (or, failing that,
    [default_timeout_ms]) expires is cancelled at the next probe and
    answered with a structured [ERR deadline ...] carrying the final
    snapshot.  The loop and [cqa_server] arm it by default.

    Creation installs the handler's metrics registry as the
    process-current {!Obs.Registry}, so solver counters land in the same
    STATS dump as request metrics. *)

val metrics : t -> Metrics.t
val sessions : t -> Session.store
val cache_length : t -> int

val stats : t -> Obs.Stats.t option
(** The workload store, when armed — the server dumps it on shutdown. *)

val sampler : t -> Obs.Sampler.t option
(** The tail-sampling ring, when armed — flushed alongside the event
    log on shutdown. *)

val sample_gauges : t -> unit
(** Refresh the runtime gauges in the metrics registry: [gc.*]
    ({!Obs.Runtime.sample_gc}), [par.*] ({!Par.sample_gauges}),
    [sessions.count]/[sessions.resident_facts]/[sessions.tracked_keys],
    and [cache.entries]/[cache.capacity]/[cache.evictions].  The loop
    calls this on its gauge ticker; STATS and METRICS call it before
    rendering. *)

val metrics_text : t -> string
(** {!sample_gauges}, then the whole registry as Prometheus text
    exposition ({!Obs.Prometheus.render}) — the document served on
    [--metrics-port] and by the METRICS command — followed by the
    [cqa_build_info] gauge (version/ocaml_version labels) and, when
    workload stats are armed, the labeled [cqa_workload_*] histogram
    families.  Uptime is in the registry itself as
    [cqa_server_uptime_seconds] (refreshed by {!sample_gauges}). *)

val dispatch : t -> ?payload:string list -> Protocol.command -> Protocol.response
(** Execute one parsed command, recording request count and latency.
    [payload] is the document text for LOAD (ignored otherwise).  The
    response is passed through {!Protocol.clamp} before being returned,
    so it always respects line-protocol framing. *)

val parse_failure : t -> string -> Protocol.response
(** The [ERR] response for an unparseable request line, recorded in the
    metrics. *)

val handle_line : t -> ?payload:string list -> string -> Protocol.response
(** [parse] + [dispatch]/[parse_failure] — the one-call entry point used
    by tests and by the event loop for non-LOAD commands. *)
