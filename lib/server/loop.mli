(** The single-process event loop: a [Unix.select]-based server speaking
    the {!Protocol} over a Unix-domain or TCP socket.

    The loop owns one {!Handler} (hence one session store, one cache, one
    metrics registry) shared by every connection.  [step] services all
    ready descriptors exactly once and returns, which makes the server
    drivable from a test or benchmark in the same process — interleave
    [step] with client reads/writes on a connected socket — while [run]
    is the production loop of [bin/cqa_server]. *)

type t

val create :
  ?cache_capacity:int ->
  ?max_body_lines:int ->
  ?on_trace:(Obs.Trace.span list -> unit) ->
  ?events:Obs.Events.sink ->
  ?slow_ms:float ->
  ?stats:Obs.Stats.t ->
  ?sampler:Obs.Sampler.t ->
  ?default_timeout_ms:float ->
  ?progress:bool ->
  ?version:string ->
  ?clock:(unit -> float) ->
  ?metrics_fd:Unix.file_descr ->
  Unix.file_descr ->
  t
(** Wrap a listening socket (see {!listen_unix}/{!listen_tcp}).  The
    descriptor is set non-blocking.  [metrics_fd] is a second listening
    socket served as a minimal HTTP endpoint: [GET /metrics] returns
    {!Handler.metrics_text} (Prometheus text exposition, one response
    per connection, then close), [GET /healthz] returns [ok].  The
    remaining optional arguments are passed to {!Handler.create};
    [progress] defaults to [true] here (the production loop arms the
    in-flight machinery) where {!Handler.create} defaults it off. *)

val handler : t -> Handler.t

val connections : t -> int
(** Currently open client connections. *)

val step : ?timeout:float -> t -> int
(** Wait up to [timeout] seconds (default 0: poll) for readiness, then
    accept new connections, read and execute every complete request, and
    flush pending output.  Returns the number of descriptors serviced;
    0 means the server is idle. *)

val run : ?max_requests:int -> ?gauge_interval:float -> t -> unit
(** [step] until {!stop} is called (e.g. from a signal handler) or the
    handler has seen [max_requests] requests.  Every [gauge_interval]
    seconds (default 5, sampled once up front) the runtime gauges are
    refreshed via {!Handler.sample_gauges}, so a scrape between requests
    still sees fresh GC, pool and session numbers. *)

val stop : t -> unit
(** Make [run] return after the current iteration; open connections are
    closed and the listening socket shut. *)

val listen_unix : string -> Unix.file_descr
(** Bind and listen on a Unix-domain socket path (unlinking any stale
    socket file first). *)

val listen_tcp : ?host:string -> port:int -> unit -> Unix.file_descr * int
(** Bind and listen on [host] (default 127.0.0.1); returns the actual
    port, useful with [port:0]. *)
