module Instance = Relational.Instance
module Fact = Relational.Fact

type t = {
  id : string;
  mutable doc : Cqa.Parse.document;
  mutable engine : Cqa.Engine.t;
  mutable digest : string;
  cache_keys : (string, unit) Hashtbl.t;
}

type store = (string, t) Hashtbl.t

let create_store () : store = Hashtbl.create 16
let count = Hashtbl.length

(* The digest keys the shared answer cache, so it must cover everything
   an answer depends on: the schema, facts, ICs, and the query
   definitions (a re-LOAD may redefine a query name — or a relation's
   attributes — over the same facts; ANALYZE output in particular
   depends on the schema alone, so omitting it would let a re-LOAD
   serve a stale memoized analysis). *)
let digest_of (doc : Cqa.Parse.document) =
  let schema = Format.asprintf "%a" Relational.Schema.pp doc.schema in
  let facts =
    Instance.fact_list doc.instance
    |> List.map Fact.to_string
    |> List.sort String.compare
  in
  let ics =
    List.map (fun ic -> Format.asprintf "%a" Constraints.Ic.pp ic) doc.ics
  in
  let queries =
    List.map
      (fun (name, q) -> Format.asprintf "%s := %a" name Logic.Cq.pp q)
      doc.queries
  in
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          ((schema :: ics) @ ("" :: facts) @ ("" :: queries))))

let engine_of (doc : Cqa.Parse.document) =
  Cqa.Engine.create ~schema:doc.schema ~ics:doc.ics doc.instance

let load store ~id doc =
  let t =
    {
      id;
      doc;
      engine = engine_of doc;
      digest = digest_of doc;
      cache_keys = Hashtbl.create 16;
    }
  in
  Hashtbl.replace store id t;
  t

let find store id = Hashtbl.find_opt store id

let close store id =
  if Hashtbl.mem store id then begin
    Hashtbl.remove store id;
    true
  end
  else false

let ids store =
  Hashtbl.fold (fun id _ acc -> id :: acc) store [] |> List.sort String.compare

let resident_facts store =
  Hashtbl.fold (fun _ t acc -> acc + Instance.size t.doc.instance) store 0

let tracked_keys store =
  Hashtbl.fold (fun _ t acc -> acc + Hashtbl.length t.cache_keys) store 0

let remember_key t key = Hashtbl.replace t.cache_keys key ()

let take_keys t =
  let keys = Hashtbl.fold (fun k () acc -> k :: acc) t.cache_keys [] in
  Hashtbl.reset t.cache_keys;
  keys

let apply_update t ~op ~rel values =
  let fact = Fact.make rel values in
  match
    match op with
    | `Add -> Instance.add t.doc.instance fact
    | `Del -> Instance.delete_fact t.doc.instance fact
  with
  | exception Invalid_argument msg -> Error msg
  | instance ->
      t.doc <- { t.doc with instance };
      t.engine <- engine_of t.doc;
      t.digest <- digest_of t.doc;
      Ok ()
