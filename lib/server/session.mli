(** Sessions: named, resident {!Cqa.Engine} instances.

    A session binds a client-chosen id to a loaded document and the
    engine built over it.  Sessions outlive connections — that is the
    point of the serving layer: the parse and engine construction cost is
    paid once per LOAD and amortized over many requests.  Each session
    carries a digest of its instance and constraints (the memoization key
    prefix, see {!Handler}) and remembers which cache keys were inserted
    on its behalf so an UPDATE can invalidate exactly them. *)

type t = {
  id : string;
  mutable doc : Cqa.Parse.document;
  mutable engine : Cqa.Engine.t;
  mutable digest : string;
  cache_keys : (string, unit) Hashtbl.t;
}

type store

val create_store : unit -> store
val count : store -> int

val load : store -> id:string -> Cqa.Parse.document -> t
(** Create or replace the session named [id]. *)

val find : store -> string -> t option

val close : store -> string -> bool
(** [false] if no such session. *)

val ids : store -> string list
(** Sorted, for STATS output. *)

val resident_facts : store -> int
(** Total facts held by resident instances across all sessions — the
    [sessions.resident_facts] gauge. *)

val tracked_keys : store -> int
(** Cache keys currently recorded against any session (each is an entry
    an UPDATE would invalidate) — the [sessions.tracked_keys] gauge. *)

val digest_of : Cqa.Parse.document -> string
(** Hex digest over the instance's fact set and the constraint list —
    two sessions holding equal data share cache entries. *)

val remember_key : t -> string -> unit
(** Record that a cache entry with this key was inserted for this
    session. *)

val take_keys : t -> string list
(** The recorded cache keys; clears the record. *)

val apply_update :
  t -> op:[ `Add | `Del ] -> rel:string -> Relational.Value.t list ->
  (unit, string) result
(** Insert or delete one fact, rebuild the engine and refresh the
    digest.  Errors (unknown relation, arity mismatch) leave the session
    unchanged. *)
