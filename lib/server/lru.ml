(* Hash table over an intrusive doubly-linked recency list: the classic
   O(1) LRU.  [first] is the most-recently-used end, [last] the eviction
   end. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option; (* towards [first] *)
  mutable next : ('k, 'v) node option; (* towards [last] *)
}

type ('k, 'v) t = {
  cap : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable first : ('k, 'v) node option;
  mutable last : ('k, 'v) node option;
  mutable evicted : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be positive";
  {
    cap = capacity;
    table = Hashtbl.create (min capacity 64);
    first = None;
    last = None;
    evicted = 0;
  }

let capacity t = t.cap
let length t = Hashtbl.length t.table
let evictions t = t.evicted

(* Detach [n] from the recency list (it stays in the table). *)
let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.first <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.last <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.first;
  (match t.first with Some f -> f.prev <- Some n | None -> t.last <- Some n);
  t.first <- Some n

let promote t n =
  (* Compare the nodes physically: [t.first != Some n] would test against
     a freshly boxed option and always be true. *)
  match t.first with
  | Some f when f == n -> ()
  | _ ->
      unlink t n;
      push_front t n

let find t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some n ->
      promote t n;
      Some n.value

let mem t k = Hashtbl.mem t.table k

let drop_last t =
  match t.last with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table n.key;
      t.evicted <- t.evicted + 1

let add t k v =
  match Hashtbl.find_opt t.table k with
  | Some n ->
      n.value <- v;
      promote t n
  | None ->
      if Hashtbl.length t.table >= t.cap then drop_last t;
      let n = { key = k; value = v; prev = None; next = None } in
      Hashtbl.replace t.table k n;
      push_front t n

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table k

let clear t =
  Hashtbl.reset t.table;
  t.first <- None;
  t.last <- None

let keys t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.key :: acc) n.next
  in
  go [] t.first
