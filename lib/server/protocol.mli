(** The cqa-serve wire protocol: line-oriented requests and responses.

    Requests are single lines (LOAD is followed by a document payload
    terminated by a lone ["."] line):

    {v
    LOAD <sid>                   % then Cqa.Parse document lines, then "."
    QUERY <sid> <name> [method=auto|enum|rewriting|key-rewriting|datalog|asp|sat]
                       [semantics=s|c] [timeout=ms]
    CHECK <sid>
    REPAIRS <sid> [s|c]
    MEASURE <sid>
    UPDATE <sid> add|del <Rel>(<v1>, ..., <vk>)
    STATS
    METRICS
    TRACE on|off
    EXPLAIN <sid> <name> [method=auto|enum|rewriting|key-rewriting|datalog|asp|sat]
                         [semantics=s|c] [timeout=ms]
    ANALYZE <sid> [<query-name>]
    WORKLOAD [TOP <n> | BY branch | RESET]
    INFLIGHT
    CLOSE <sid>
    QUIT
    v}

    [timeout=ms] sets a per-request deadline: a request whose budget
    blows is cancelled cooperatively and answered with a structured
    [ERR deadline ...] carrying the last progress snapshot.  INFLIGHT
    lists the requests currently executing (id, session, plan branch,
    phase, heartbeat age).

    Every response is a status line — [OK <head>] or [ERR <message>] —
    followed by zero or more data lines and a terminating lone ["."]
    line, so clients always read up to the first ["."]. *)

type semantics = S | C

type method_ = Auto | Enum | Rewriting | Key_rewriting | Datalog | Asp | Sat

type command =
  | Load of string  (** session id; the document payload follows *)
  | Query of {
      sid : string;
      name : string;
      method_ : method_;
      semantics : semantics;
      timeout_ms : float option;  (** per-request deadline budget *)
    }
  | Check of string
  | Repairs of { sid : string; semantics : semantics }
  | Measure of string
  | Update of {
      sid : string;
      op : [ `Add | `Del ];
      rel : string;
      values : Relational.Value.t list;
    }
  | Stats
  | Metrics
      (** METRICS: the registry in Prometheus text exposition, same
          document the [--metrics-port] HTTP listener serves *)
  | Trace of bool  (** TRACE on|off: toggle span collection server-wide *)
  | Explain of {
      sid : string;
      name : string;
      method_ : method_;
      semantics : semantics;
      timeout_ms : float option;
    }  (** EXPLAIN: run the query traced and report spans + counters *)
  | Analyze of { sid : string; name : string option }
      (** ANALYZE: static analysis of the session's constraints, repair
          program and queries — or of one named query *)
  | Workload of [ `Summary | `Top of int | `By_branch | `Reset ]
      (** WORKLOAD: the fingerprint statements store — summary counters,
          top-[n] fingerprints by total wall time, per-plan-branch cost
          centers, or reset *)
  | Inflight
      (** INFLIGHT: one line per request currently executing — request
          id, command, session, plan branch, phase, work done, heartbeat
          age and time to deadline *)
  | Close of string
  | Quit

val parse : string -> (command, string) result
(** Parse one request line.  Keywords are case-insensitive; value tokens
    in UPDATE follow the conventions of {!Cqa.Parse} (all-digit tokens are
    integers, [null] is the SQL null, double-quoted strings keep their
    spelling, everything else is a string constant).  Never raises: any
    malformed request is reported as [Error]. *)

val command_label : command -> string
(** The metrics label, e.g. ["QUERY"]. *)

val terminator : string
(** The lone ["."] line ending payloads and responses. *)

type response = { status : [ `Ok | `Err ]; head : string; body : string list }

val ok : ?body:string list -> string -> response
val err : string -> response

val clamp : ?max_lines:int -> response -> response
(** Framing safety.  Body elements are first split into physical lines
    (an element carrying embedded newlines counts as — and is clamped
    as — the lines it puts on the wire); lines equal to {!terminator}
    are indented so they cannot end the response early; and bodies
    longer than [max_lines] physical lines (default 10,000) are
    truncated on a line boundary with a final
    ["...truncated (K of N lines)"] marker line, so machine consumers
    never see a torn line. *)

val render : response -> string
(** The full wire text of a response, ["\n"]-terminated lines including
    the final terminator. *)
