module Value = Relational.Value

type semantics = S | C
type method_ = Auto | Enum | Rewriting | Key_rewriting | Datalog | Asp | Sat

type command =
  | Load of string
  | Query of {
      sid : string;
      name : string;
      method_ : method_;
      semantics : semantics;
      timeout_ms : float option;
    }
  | Check of string
  | Repairs of { sid : string; semantics : semantics }
  | Measure of string
  | Update of {
      sid : string;
      op : [ `Add | `Del ];
      rel : string;
      values : Value.t list;
    }
  | Stats
  | Metrics
  | Trace of bool
  | Explain of {
      sid : string;
      name : string;
      method_ : method_;
      semantics : semantics;
      timeout_ms : float option;
    }
  | Analyze of { sid : string; name : string option }
  | Workload of [ `Summary | `Top of int | `By_branch | `Reset ]
  | Inflight
  | Close of string
  | Quit

let terminator = "."

let ( let* ) = Result.bind

let split_words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let semantics_of = function
  | "s" -> Ok S
  | "c" -> Ok C
  | s -> Error (Printf.sprintf "unknown semantics %S (expected s or c)" s)

let method_of = function
  | "auto" -> Ok Auto
  | "enum" -> Ok Enum
  | "rewriting" -> Ok Rewriting
  | "key-rewriting" -> Ok Key_rewriting
  | "datalog" -> Ok Datalog
  | "asp" -> Ok Asp
  | "sat" -> Ok Sat
  | s -> Error (Printf.sprintf "unknown method %S" s)

(* QUERY options: [method=M], [semantics=S] and [timeout=ms] tokens in
   any order. *)
let rec query_options method_ semantics timeout = function
  | [] -> Ok (method_, semantics, timeout)
  | tok :: rest -> (
      match String.index_opt tok '=' with
      | Some i -> (
          let k = String.sub tok 0 i
          and v = String.sub tok (i + 1) (String.length tok - i - 1) in
          match String.lowercase_ascii k with
          | "method" ->
              let* m = method_of (String.lowercase_ascii v) in
              query_options m semantics timeout rest
          | "semantics" ->
              let* s = semantics_of (String.lowercase_ascii v) in
              query_options method_ s timeout rest
          | "timeout" -> (
              match float_of_string_opt v with
              | Some ms when ms > 0.0 ->
                  query_options method_ semantics (Some ms) rest
              | _ ->
                  Error
                    (Printf.sprintf
                       "bad timeout %S (expected a positive number of \
                        milliseconds)"
                       v))
          | _ -> Error (Printf.sprintf "unknown QUERY option %S" k))
      | None -> Error (Printf.sprintf "unknown QUERY option %S" tok))

let is_all_digits s =
  s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

(* Value tokens follow the Cqa.Parse conventions (plus negative ints and
   decimal reals, which rows written back by a client may contain). *)
let value_of_token tok =
  let n = String.length tok in
  if n >= 2 && tok.[0] = '"' && tok.[n - 1] = '"' then
    Value.str (String.sub tok 1 (n - 2))
  else if String.equal tok "null" then Value.Null
  else if String.equal tok "true" then Value.bool true
  else if String.equal tok "false" then Value.bool false
  else if
    is_all_digits tok
    || (n > 1 && tok.[0] = '-' && is_all_digits (String.sub tok 1 (n - 1)))
  then (
    (* A digit run longer than max_int still has to produce a value, not
       an exception. *)
    match int_of_string_opt tok with
    | Some i -> Value.int i
    | None -> Value.str tok)
  else if String.contains tok '.' then
    match float_of_string_opt tok with
    | Some f -> Value.real f
    | None -> Value.str tok
  else Value.str tok

(* "Rel(v1, v2, ...)" — the row syntax of Cqa.Parse without the leading
   `row` keyword. *)
let fact_of_text text =
  let text = String.trim text in
  match String.index_opt text '(' with
  | None -> Error "expected Rel(v1, ..., vk)"
  | Some i ->
      if String.length text = 0 || text.[String.length text - 1] <> ')' then
        Error "expected Rel(v1, ..., vk)"
      else
        let rel = String.trim (String.sub text 0 i) in
        let inside = String.sub text (i + 1) (String.length text - i - 2) in
        if rel = "" then Error "missing relation name"
        else
          let values =
            if String.trim inside = "" then []
            else
              String.split_on_char ',' inside
              |> List.map (fun tok -> value_of_token (String.trim tok))
          in
          Ok (rel, values)

let parse_exn line =
  let line = String.trim line in
  match split_words line with
  | [] -> Error "empty request"
  | verb :: args -> (
      match (String.uppercase_ascii verb, args) with
      | "LOAD", [ sid ] -> Ok (Load sid)
      | "LOAD", _ -> Error "usage: LOAD <sid>"
      | "QUERY", sid :: name :: opts ->
          let* method_, semantics, timeout_ms = query_options Auto S None opts in
          Ok (Query { sid; name; method_; semantics; timeout_ms })
      | "QUERY", _ ->
          Error
            "usage: QUERY <sid> <name> [method=M] [semantics=S] [timeout=ms]"
      | "CHECK", [ sid ] -> Ok (Check sid)
      | "CHECK", _ -> Error "usage: CHECK <sid>"
      | "REPAIRS", [ sid ] -> Ok (Repairs { sid; semantics = S })
      | "REPAIRS", [ sid; sem ] ->
          let* semantics = semantics_of (String.lowercase_ascii sem) in
          Ok (Repairs { sid; semantics })
      | "REPAIRS", _ -> Error "usage: REPAIRS <sid> [s|c]"
      | "MEASURE", [ sid ] -> Ok (Measure sid)
      | "MEASURE", _ -> Error "usage: MEASURE <sid>"
      | "UPDATE", sid :: op :: rest ->
          let* op =
            match String.lowercase_ascii op with
            | "add" -> Ok `Add
            | "del" -> Ok `Del
            | s -> Error (Printf.sprintf "unknown UPDATE op %S (add or del)" s)
          in
          let* rel, values = fact_of_text (String.concat " " rest) in
          Ok (Update { sid; op; rel; values })
      | "UPDATE", _ -> Error "usage: UPDATE <sid> add|del Rel(v1, ..., vk)"
      | "STATS", [] -> Ok Stats
      | "STATS", _ -> Error "usage: STATS"
      | "METRICS", [] -> Ok Metrics
      | "METRICS", _ -> Error "usage: METRICS"
      | "TRACE", [ flag ] -> (
          match String.lowercase_ascii flag with
          | "on" -> Ok (Trace true)
          | "off" -> Ok (Trace false)
          | s -> Error (Printf.sprintf "unknown TRACE mode %S (on or off)" s))
      | "TRACE", _ -> Error "usage: TRACE on|off"
      | "EXPLAIN", sid :: name :: opts ->
          let* method_, semantics, timeout_ms = query_options Auto S None opts in
          Ok (Explain { sid; name; method_; semantics; timeout_ms })
      | "EXPLAIN", _ ->
          Error
            "usage: EXPLAIN <sid> <name> [method=M] [semantics=S] [timeout=ms]"
      | "WORKLOAD", [] -> Ok (Workload `Summary)
      | "WORKLOAD", [ sub ] -> (
          match String.uppercase_ascii sub with
          | "TOP" -> Ok (Workload (`Top 10))
          | "RESET" -> Ok (Workload `Reset)
          | s -> Error (Printf.sprintf "unknown WORKLOAD mode %S" s))
      | "WORKLOAD", [ sub; arg ] -> (
          match (String.uppercase_ascii sub, arg) with
          | "TOP", n -> (
              match int_of_string_opt n with
              | Some n when n > 0 -> Ok (Workload (`Top n))
              | _ -> Error "usage: WORKLOAD TOP <n>")
          | "BY", b when String.lowercase_ascii b = "branch" ->
              Ok (Workload `By_branch)
          | _ -> Error "usage: WORKLOAD [TOP <n> | BY branch | RESET]")
      | "WORKLOAD", _ -> Error "usage: WORKLOAD [TOP <n> | BY branch | RESET]"
      | "INFLIGHT", [] -> Ok Inflight
      | "INFLIGHT", _ -> Error "usage: INFLIGHT"
      | "ANALYZE", [ sid ] -> Ok (Analyze { sid; name = None })
      | "ANALYZE", [ sid; name ] -> Ok (Analyze { sid; name = Some name })
      | "ANALYZE", _ -> Error "usage: ANALYZE <sid> [<query-name>]"
      | "CLOSE", [ sid ] -> Ok (Close sid)
      | "CLOSE", _ -> Error "usage: CLOSE <sid>"
      | "QUIT", [] -> Ok Quit
      | "QUIT", _ -> Error "usage: QUIT"
      | v, _ -> Error (Printf.sprintf "unknown command %S" v))

(* A malformed request must never raise out of the parser: the loop
   answers every request on the same connection, so an escaping
   exception would take down the whole server. *)
let parse line =
  try parse_exn line
  with e -> Error (Printf.sprintf "malformed request: %s" (Printexc.to_string e))

let command_label = function
  | Load _ -> "LOAD"
  | Query _ -> "QUERY"
  | Check _ -> "CHECK"
  | Repairs _ -> "REPAIRS"
  | Measure _ -> "MEASURE"
  | Update _ -> "UPDATE"
  | Stats -> "STATS"
  | Metrics -> "METRICS"
  | Trace _ -> "TRACE"
  | Explain _ -> "EXPLAIN"
  | Analyze _ -> "ANALYZE"
  | Workload _ -> "WORKLOAD"
  | Inflight -> "INFLIGHT"
  | Close _ -> "CLOSE"
  | Quit -> "QUIT"

type response = { status : [ `Ok | `Err ]; head : string; body : string list }

let ok ?(body = []) head = { status = `Ok; head; body }
let err msg = { status = `Err; head = msg; body = [] }

(* Responses cut down by [clamp] — truncation is otherwise invisible in
   metrics (the client sees the marker line, STATS sees this). *)
let c_clamped = Obs.Counter.make "protocol.clamped_total"

(* Keep a response inside line-protocol framing: a body line equal to the
   terminator would end the response early (readers stop at the first
   lone "."), so it is indented; and bodies longer than [max_lines] are
   cut with an explicit marker so clients can tell truncation from a
   short answer.  Clamping is line-aware: a body element containing
   embedded newlines is split into its physical lines first, so the
   budget counts what actually goes on the wire, an embedded lone "."
   cannot tear the framing, and truncation always falls on a line
   boundary — machine consumers never see a torn line. *)
let clamp ?(max_lines = 10_000) r =
  let safe line = if String.equal line terminator then " ." else line in
  let body =
    (* Split elements carrying embedded newlines into physical lines;
       the common newline-free element passes through unallocated. *)
    if List.exists (fun l -> String.contains l '\n') r.body then
      List.concat_map (String.split_on_char '\n') r.body
    else r.body
  in
  let n = List.length body in
  let body =
    if n <= max_lines then List.map safe body
    else begin
      Obs.Counter.incr c_clamped;
      let rec take k = function
        | x :: rest when k > 0 -> safe x :: take (k - 1) rest
        | _ -> [ Printf.sprintf "...truncated (%d of %d lines)" max_lines n ]
      in
      take max_lines body
    end
  in
  { r with body }

let render { status; head; body } =
  let status_line =
    match status with
    | `Ok -> if head = "" then "OK" else "OK " ^ head
    | `Err -> "ERR " ^ head
  in
  String.concat "\n" ((status_line :: body) @ [ terminator; "" ])
