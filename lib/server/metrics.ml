(* Decade buckets: latency < 1us, < 10us, ..., < 10s, and overflow. *)
let bucket_bounds =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.0; 10.0 |]

let nbuckets = Array.length bucket_bounds + 1

type series = {
  mutable count : int;
  mutable total : float; (* seconds *)
  buckets : int array;
}

type t = {
  mutable requests : int;
  mutable parse_errors : int;
  mutable errors : int;
  mutable hits : int;
  mutable misses : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
  per_command : (string, series) Hashtbl.t;
}

let create () =
  {
    requests = 0;
    parse_errors = 0;
    errors = 0;
    hits = 0;
    misses = 0;
    bytes_in = 0;
    bytes_out = 0;
    per_command = Hashtbl.create 8;
  }

let series_of t command =
  match Hashtbl.find_opt t.per_command command with
  | Some s -> s
  | None ->
      let s = { count = 0; total = 0.0; buckets = Array.make nbuckets 0 } in
      Hashtbl.replace t.per_command command s;
      s

let bucket_of latency =
  let rec go i =
    if i >= Array.length bucket_bounds then i
    else if latency < bucket_bounds.(i) then i
    else go (i + 1)
  in
  go 0

let observe t ~command ~latency =
  t.requests <- t.requests + 1;
  let s = series_of t command in
  s.count <- s.count + 1;
  s.total <- s.total +. latency;
  let b = bucket_of latency in
  s.buckets.(b) <- s.buckets.(b) + 1

let parse_error t =
  t.requests <- t.requests + 1;
  t.parse_errors <- t.parse_errors + 1

let error t = t.errors <- t.errors + 1
let cache_hit t = t.hits <- t.hits + 1
let cache_miss t = t.misses <- t.misses + 1
let add_bytes_in t n = t.bytes_in <- t.bytes_in + n
let add_bytes_out t n = t.bytes_out <- t.bytes_out + n
let requests t = t.requests
let errors t = t.errors
let hits t = t.hits
let misses t = t.misses
let bytes_in t = t.bytes_in
let bytes_out t = t.bytes_out

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total

let render t =
  let counters =
    [
      Printf.sprintf "requests_total %d" t.requests;
      Printf.sprintf "parse_errors_total %d" t.parse_errors;
      Printf.sprintf "errors_total %d" t.errors;
      Printf.sprintf "cache_hits %d" t.hits;
      Printf.sprintf "cache_misses %d" t.misses;
      Printf.sprintf "cache_hit_rate %.4f" (hit_rate t);
      Printf.sprintf "bytes_in %d" t.bytes_in;
      Printf.sprintf "bytes_out %d" t.bytes_out;
    ]
  in
  let latencies =
    Hashtbl.fold
      (fun command s acc ->
        let mean_us =
          if s.count = 0 then 0.0 else s.total /. float_of_int s.count *. 1e6
        in
        let hist =
          String.concat ","
            (Array.to_list (Array.map string_of_int s.buckets))
        in
        Printf.sprintf "latency_%s count=%d mean_us=%.1f hist=%s"
          (String.lowercase_ascii command)
          s.count mean_us hist
        :: acc)
      t.per_command []
    |> List.sort compare
  in
  counters @ latencies
