(* Request metrics, rebased on Obs.Registry so that server-side request
   telemetry and the solver counters threaded through lib/obs render
   through one dump path (STATS, --metrics-dump).  The frequently-bumped
   scalars keep direct cell references; per-command latencies are
   registry histograms named latency_<command>. *)

type t = {
  registry : Obs.Registry.t;
  requests : int ref;
  parse_errors : int ref;
  errors : int ref;
  hits : int ref;
  misses : int ref;
  bytes_in : int ref;
  bytes_out : int ref;
}

let create ?registry () =
  let registry =
    match registry with Some r -> r | None -> Obs.Registry.create ()
  in
  let cell = Obs.Registry.counter_cell registry in
  {
    registry;
    requests = cell "requests_total";
    parse_errors = cell "parse_errors_total";
    errors = cell "errors_total";
    hits = cell "cache_hits";
    misses = cell "cache_misses";
    bytes_in = cell "bytes_in";
    bytes_out = cell "bytes_out";
  }

let registry t = t.registry

let observe t ~command ~latency =
  incr t.requests;
  let h =
    Obs.Registry.histogram t.registry
      ("latency_" ^ String.lowercase_ascii command)
  in
  Obs.Registry.observe h latency

let parse_error t =
  incr t.requests;
  incr t.parse_errors

let error t = incr t.errors
let cache_hit t = incr t.hits
let cache_miss t = incr t.misses
let add_bytes_in t n = t.bytes_in := !(t.bytes_in) + n
let add_bytes_out t n = t.bytes_out := !(t.bytes_out) + n
let requests t = !(t.requests)
let errors t = !(t.errors)
let hits t = !(t.hits)
let misses t = !(t.misses)
let bytes_in t = !(t.bytes_in)
let bytes_out t = !(t.bytes_out)

let hit_rate t =
  let total = !(t.hits) + !(t.misses) in
  if total = 0 then 0.0 else float_of_int !(t.hits) /. float_of_int total

(* One merged, name-sorted stream (the registry render is already
   sorted; the derived hit-rate line slots in at its name), so STATS
   and --metrics-dump output diff stably between runs. *)
let render t =
  let derived = ("cache_hit_rate", Printf.sprintf "cache_hit_rate %.4f" (hit_rate t)) in
  let entry line =
    match String.index_opt line ' ' with
    | Some i -> (String.sub line 0 i, line)
    | None -> (line, line)
  in
  derived :: List.map entry (Obs.Registry.render t.registry)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.map snd
