(** Synthetic workload generators for the benchmark harness.

    All generators are deterministic given [seed].  They plant a controlled
    amount of inconsistency so that benches can sweep database size and
    violation rate independently. *)

val key_conflict_instance :
  ?seed:int ->
  n:int ->
  conflict_fraction:float ->
  unit ->
  Relational.Instance.t * Constraints.Ic.t
(** Relation [T(k, v)] with a primary key on [k]: [n] tuples, a
    [conflict_fraction] of which get a duplicate key with a different
    value (each conflicting key has exactly two claimants, so the number
    of S-repairs is 2^(#conflicts)). *)

val key_conflict_chain :
  ?seed:int -> pairs:int -> unit -> Relational.Instance.t * Constraints.Ic.t
(** Exactly [pairs] two-claimant key conflicts and nothing else:
    2^pairs S-repairs — the paper's "exponentially many repairs" example
    class. *)

val denial_instance :
  ?seed:int ->
  n:int ->
  conflict_fraction:float ->
  unit ->
  Relational.Instance.t * Constraints.Ic.t
(** The κ pattern of Example 3.5: relations R(a,b), S(a) and the denial
    ¬∃x,y (S(x) ∧ R(x,y) ∧ S(y)); conflicts are planted S–R–S chains. *)

val ind_instance :
  ?seed:int ->
  n:int ->
  dangling_fraction:float ->
  unit ->
  Relational.Instance.t * Constraints.Ic.t
(** Supply/Articles with an inclusion dependency; a fraction of Supply
    tuples reference missing articles. *)

val hard_join_schema : Relational.Schema.t
(** R(a,b), S(c,d) — the schema of the coNP-hard join workload. *)

val hard_join_keys : Constraints.Ic.t list
(** Primary keys R[a], S[c]. *)

val hard_join_query : unit -> Logic.Cq.t
(** q(x) :- R(x,y), S(z,y): the existential join variable [y] connects
    two non-key positions, so consistent answering is coNP-complete and
    the engine's auto route is [sat_compilation]. *)

val hard_join_instance :
  n:int ->
  conflict_fraction:float ->
  unit ->
  Relational.Instance.t * Constraints.Ic.t list * Relational.Value.t list list
(** Deterministic instance of ~[n] tuples over [hard_join_schema] built
    from self-contained gadgets (uncertain/certain key blocks on either
    relation plus clean pairs) until the fraction of conflicting tuples
    reaches [conflict_fraction].  Returns the instance, the key
    constraints, and the exact sorted list of certain answers to
    [hard_join_query] — known by construction, so benches can assert
    correctness at sizes where repair enumeration is infeasible.  The
    number of S-repairs is 2^(#key groups), i.e. exponential in
    [n * conflict_fraction]. *)

val employees_query : unit -> Logic.Cq.t
(** The projection query Q(x): ∃v T(x, v) over the key-conflict schema. *)

val full_tuple_query : unit -> Logic.Cq.t
(** Q(x, v): T(x, v). *)
