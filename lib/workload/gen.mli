(** Synthetic workload generators for the benchmark harness.

    All generators are deterministic given [seed].  They plant a controlled
    amount of inconsistency so that benches can sweep database size and
    violation rate independently. *)

val key_conflict_instance :
  ?seed:int ->
  n:int ->
  conflict_fraction:float ->
  unit ->
  Relational.Instance.t * Constraints.Ic.t
(** Relation [T(k, v)] with a primary key on [k]: [n] tuples, a
    [conflict_fraction] of which get a duplicate key with a different
    value (each conflicting key has exactly two claimants, so the number
    of S-repairs is 2^(#conflicts)). *)

val key_conflict_chain :
  ?seed:int -> pairs:int -> unit -> Relational.Instance.t * Constraints.Ic.t
(** Exactly [pairs] two-claimant key conflicts and nothing else:
    2^pairs S-repairs — the paper's "exponentially many repairs" example
    class. *)

val denial_instance :
  ?seed:int ->
  n:int ->
  conflict_fraction:float ->
  unit ->
  Relational.Instance.t * Constraints.Ic.t
(** The κ pattern of Example 3.5: relations R(a,b), S(a) and the denial
    ¬∃x,y (S(x) ∧ R(x,y) ∧ S(y)); conflicts are planted S–R–S chains. *)

val ind_instance :
  ?seed:int ->
  n:int ->
  dangling_fraction:float ->
  unit ->
  Relational.Instance.t * Constraints.Ic.t
(** Supply/Articles with an inclusion dependency; a fraction of Supply
    tuples reference missing articles. *)

val employees_query : unit -> Logic.Cq.t
(** The projection query Q(x): ∃v T(x, v) over the key-conflict schema. *)

val full_tuple_query : unit -> Logic.Cq.t
(** Q(x, v): T(x, v). *)
