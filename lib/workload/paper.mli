(** The paper's worked-example databases and constraints, as shared
    fixtures for the test suite and the benchmark harness. *)

module Supply : sig
  val schema : Relational.Schema.t
  val instance : Relational.Instance.t
  (** Example 2.1: Supply/Articles with a dangling item I3. *)

  val ind : Constraints.Ic.t

  val schema_with_cost : Relational.Schema.t
  val instance_with_cost : Relational.Instance.t
  (** Example 4.3: Articles with a cost column, making the IND a tgd with
      an existential head variable. *)

  val tgd : Constraints.Ic.t
  val items_query : Logic.Cq.t
  (** Q(z): ∃x,y Supply(x,y,z). *)
end

module Employee : sig
  val schema : Relational.Schema.t
  val instance : Relational.Instance.t
  (** Example 3.3: page has two salaries. *)

  val key : Constraints.Ic.t
  val full_query : Logic.Cq.t
  val names_query : Logic.Cq.t
end

module Denial : sig
  val schema : Relational.Schema.t
  val instance : Relational.Instance.t
  (** Example 3.5: R/S with tids ι1..ι6. *)

  val kappa : Constraints.Ic.t
  val q : Logic.Cq.t
  (** The BCQ associated to κ (Example 7.1). *)
end

module Hypergraph : sig
  val schema : Relational.Schema.t
  val instance : Relational.Instance.t
  (** Example 4.1 / Figure 1: A(a)..E(a). *)

  val dcs : Constraints.Ic.t list
end

module Courses : sig
  val schema : Relational.Schema.t
  val instance : Relational.Instance.t
  (** Example 7.4: Dep (ι1..ι3) and Course (ι4..ι8). *)

  val psi : Constraints.Ic.t
  val q : Logic.Cq.t
  (** (A) Q(x): ∃y,z (Dep(y,x) ∧ Course(z,x,y)). *)

  val q2 : Logic.Cq.t
  (** (C) Q2(x): ∃y,z Course(z,x,y). *)

  val john : Relational.Value.t list
end

module Customers : sig
  val schema : Relational.Schema.t
  val instance : Relational.Instance.t
  (** Section 6's CC/AC/phone table. *)

  val fd1 : Constraints.Ic.t
  val fd2 : Constraints.Ic.t
  val cfd : Constraints.Ic.t
  val names_query : Logic.Cq.t
end

module Universities : sig
  val global_schema : Relational.Schema.t
  val gav_views : Datalog.Rule.t list
  val sources_51 : Relational.Fact.t list
  (** Example 5.1's consistent sources. *)

  val sources_52 : Relational.Fact.t list
  (** Example 5.2: number 101 claimed by john and sue. *)

  val global_fd : Constraints.Ic.t
  val students_query : Logic.Cq.t
end
