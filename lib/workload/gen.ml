module Schema = Relational.Schema
module Instance = Relational.Instance
module Value = Relational.Value
module Ic = Constraints.Ic
open Logic

let kv_schema = Schema.of_list [ ("T", [ "k"; "v" ]) ]
let kv_key = Ic.key ~rel:"T" [ 0 ]

let key_conflict_instance ?(seed = 42) ~n ~conflict_fraction () =
  let rng = Random.State.make [| seed |] in
  let conflicts = int_of_float (float_of_int n *. conflict_fraction /. 2.0) in
  let rows = ref [] in
  (* Clean tuples with distinct keys, then conflicting pairs on fresh keys. *)
  for i = 0 to n - (2 * conflicts) - 1 do
    rows := [ Value.int i; Value.int (Random.State.int rng 1000) ] :: !rows
  done;
  for j = 0 to conflicts - 1 do
    let k = 1_000_000 + j in
    let v1 = Random.State.int rng 1000 in
    rows := [ Value.int k; Value.int v1 ] :: !rows;
    rows := [ Value.int k; Value.int (v1 + 1 + Random.State.int rng 1000) ] :: !rows
  done;
  (Instance.of_rows kv_schema [ ("T", !rows) ], kv_key)

let key_conflict_chain ?(seed = 42) ~pairs () =
  let rng = Random.State.make [| seed |] in
  let rows = ref [] in
  for j = 0 to pairs - 1 do
    let v1 = Random.State.int rng 1000 in
    rows := [ Value.int j; Value.int v1 ] :: !rows;
    rows := [ Value.int j; Value.int (v1 + 1 + Random.State.int rng 1000) ] :: !rows
  done;
  (Instance.of_rows kv_schema [ ("T", !rows) ], kv_key)

let rs_schema = Schema.of_list [ ("R", [ "a"; "b" ]); ("S", [ "a" ]) ]

let kappa =
  let x = Term.var "x" and y = Term.var "y" in
  Ic.denial ~name:"kappa"
    [ Atom.make "S" [ x ]; Atom.make "R" [ x; y ]; Atom.make "S" [ y ] ]

let denial_instance ?(seed = 42) ~n ~conflict_fraction () =
  let rng = Random.State.make [| seed |] in
  let conflicts = int_of_float (float_of_int n *. conflict_fraction /. 3.0) in
  let clean = max 0 (n - (3 * conflicts)) in
  let label i = Value.str (Printf.sprintf "c%d" i) in
  let r_rows = ref [] and s_rows = ref [] in
  (* Clean region: R tuples pointing between values never both in S. *)
  for i = 0 to clean - 1 do
    if Random.State.bool rng then
      r_rows := [ label (10_000 + i); label (20_000 + i) ] :: !r_rows
    else s_rows := [ label (30_000 + i) ] :: !s_rows
  done;
  (* Conflict chains: S(u) ∧ R(u,w) ∧ S(w). *)
  for j = 0 to conflicts - 1 do
    let u = label (40_000 + (2 * j)) and w = label (40_001 + (2 * j)) in
    s_rows := [ u ] :: [ w ] :: !s_rows;
    r_rows := [ u; w ] :: !r_rows
  done;
  ( Instance.of_rows rs_schema [ ("R", !r_rows); ("S", !s_rows) ],
    kappa )

let supply_schema =
  Schema.of_list
    [ ("Supply", [ "company"; "receiver"; "item" ]); ("Articles", [ "item" ]) ]

let supply_ind = Ic.ind ~sub:("Supply", [ 2 ]) ~sup:("Articles", [ 0 ])

let ind_instance ?(seed = 42) ~n ~dangling_fraction () =
  let rng = Random.State.make [| seed |] in
  let dangling = int_of_float (float_of_int n *. dangling_fraction) in
  let item i = Value.str (Printf.sprintf "i%d" i) in
  let supply = ref [] and articles = ref [] in
  for i = 0 to n - 1 do
    let company = Value.str (Printf.sprintf "c%d" (Random.State.int rng 50)) in
    let receiver = Value.str (Printf.sprintf "r%d" (Random.State.int rng 50)) in
    if i < dangling then
      (* Reference a missing article. *)
      supply := [ company; receiver; item (1_000_000 + i) ] :: !supply
    else begin
      supply := [ company; receiver; item i ] :: !supply;
      articles := [ item i ] :: !articles
    end
  done;
  ( Instance.of_rows supply_schema
      [ ("Supply", !supply); ("Articles", !articles) ],
    supply_ind )

(* ------------------------------------------------------------------ *)
(* The coNP-hard join pattern: q(x) :- R(x,y), S(z,y) under keys R[0],
   S[0].  The existential join variable y links two non-key positions,
   which is exactly the shape the classifier flags Conp_complete_candidate
   and routes to the SAT backend.  The generator plants gadgets whose
   certainty status is known by construction, so benches can assert
   correctness at sizes where repair enumeration cannot finish. *)

let hard_join_schema =
  Schema.of_list [ ("R", [ "a"; "b" ]); ("S", [ "c"; "d" ]) ]

let hard_join_keys = [ Ic.key ~rel:"R" [ 0 ]; Ic.key ~rel:"S" [ 0 ] ]

let hard_join_query () =
  Cq.make ~name:"hard" [ Term.var "x" ]
    [
      Atom.make "R" [ Term.var "x"; Term.var "y" ];
      Atom.make "S" [ Term.var "z"; Term.var "y" ];
    ]

let hard_join_instance ~n ~conflict_fraction () =
  let r_rows = ref [] and s_rows = ref [] in
  let certain = ref [] in
  let total = ref 0 and conflicting = ref 0 in
  (* Disjoint value pools keep gadgets independent: every key and every
     join value is used by exactly one gadget, so no accidental witness
     crosses gadget boundaries. *)
  let next_r = ref 0 and next_s = ref 500_000 and next_j = ref 1_000_000 in
  let r_key () = let k = !next_r in incr next_r; Value.int k in
  let s_key () = let k = !next_s in incr next_s; Value.int k in
  let join () = let j = !next_j in incr next_j; Value.int j in
  let add_r row = r_rows := row :: !r_rows; incr total in
  let add_s row = s_rows := row :: !s_rows; incr total in
  let gadget = ref 0 in
  while !total < n do
    let under =
      float_of_int !conflicting
      < conflict_fraction *. float_of_int (max 1 !total)
    in
    if not under then begin
      (* Clean pair R(k,j), S(s,j): certain via the clean-witness path. *)
      let k = r_key () and s = s_key () and j = join () in
      add_r [ k; j ];
      add_s [ s; j ];
      certain := [ k ] :: !certain
    end
    else begin
      (match !gadget mod 4 with
      | 0 ->
          (* Uncertain R-block: key group {R(k,j1), R(k,j2)}, witness
             only for the j1 claimant — repairs keeping j2 lose x=k. *)
          let k = r_key () and j1 = join () and j2 = join () in
          add_r [ k; j1 ];
          add_r [ k; j2 ];
          add_s [ s_key (); j1 ]
      | 1 ->
          (* Certain R-block: both claimants have a surviving witness,
             so x=k holds in every repair — but only a SAT refutation
             (no clean witness exists) can prove it. *)
          let k = r_key () and j1 = join () and j2 = join () in
          add_r [ k; j1 ];
          add_r [ k; j2 ];
          add_s [ s_key (); j1 ];
          add_s [ s_key (); j2 ];
          certain := [ k ] :: !certain
      | 2 ->
          (* Uncertain S-block: the only witness's S tuple is contested
             by a claimant whose join value matches nothing. *)
          let k = r_key () and s = s_key () and j = join () in
          add_r [ k; j ];
          add_s [ s; j ];
          add_s [ s; join () ]
      | _ ->
          (* Certain S-block: contested S tuple shadowed by a clean
             backup with the same join value. *)
          let k = r_key () and s = s_key () and j = join () in
          add_r [ k; j ];
          add_s [ s; j ];
          add_s [ s; join () ];
          add_s [ s_key (); j ];
          certain := [ k ] :: !certain);
      conflicting := !conflicting + 2;
      incr gadget
    end
  done;
  ( Instance.of_rows hard_join_schema [ ("R", !r_rows); ("S", !s_rows) ],
    hard_join_keys,
    List.sort compare !certain )

let employees_query () =
  Cq.make ~name:"proj" [ Term.var "x" ]
    [ Atom.make "T" [ Term.var "x"; Term.var "v" ] ]

let full_tuple_query () =
  Cq.make ~name:"full" [ Term.var "x"; Term.var "v" ]
    [ Atom.make "T" [ Term.var "x"; Term.var "v" ] ]
