module Schema = Relational.Schema
module Instance = Relational.Instance
module Value = Relational.Value
module Fact = Relational.Fact
module Ic = Constraints.Ic
open Logic

let v = Value.str
let i = Value.int

module Supply = struct
  let schema =
    Schema.of_list
      [ ("Supply", [ "company"; "receiver"; "item" ]); ("Articles", [ "item" ]) ]

  let supply_rows =
    [
      [ v "C1"; v "R1"; v "I1" ];
      [ v "C2"; v "R2"; v "I2" ];
      [ v "C2"; v "R1"; v "I3" ];
    ]

  let instance =
    Instance.of_rows schema
      [ ("Supply", supply_rows); ("Articles", [ [ v "I1" ]; [ v "I2" ] ]) ]

  let ind = Ic.ind ~sub:("Supply", [ 2 ]) ~sup:("Articles", [ 0 ])

  let schema_with_cost =
    Schema.of_list
      [
        ("Supply", [ "company"; "receiver"; "item" ]);
        ("Articles", [ "item"; "cost" ]);
      ]

  let instance_with_cost =
    Instance.of_rows schema_with_cost
      [
        ("Supply", supply_rows);
        ("Articles", [ [ v "I1"; i 50 ]; [ v "I2"; i 30 ] ]);
      ]

  let tgd = Ic.ind ~sub:("Supply", [ 2 ]) ~sup:("Articles", [ 0 ])

  let items_query =
    Cq.make ~name:"items" [ Term.var "z" ]
      [ Atom.make "Supply" [ Term.var "x"; Term.var "y"; Term.var "z" ] ]
end

module Employee = struct
  let schema = Schema.of_list [ ("Employee", [ "name"; "salary" ]) ]

  let instance =
    Instance.of_rows schema
      [
        ( "Employee",
          [
            [ v "page"; i 5 ];
            [ v "page"; i 8 ];
            [ v "smith"; i 3 ];
            [ v "stowe"; i 7 ];
          ] );
      ]

  let key = Ic.key ~rel:"Employee" [ 0 ]

  let full_query =
    Cq.make ~name:"full"
      [ Term.var "x"; Term.var "y" ]
      [ Atom.make "Employee" [ Term.var "x"; Term.var "y" ] ]

  let names_query =
    Cq.make ~name:"names" [ Term.var "x" ]
      [ Atom.make "Employee" [ Term.var "x"; Term.var "y" ] ]
end

module Denial = struct
  let schema = Schema.of_list [ ("R", [ "a"; "b" ]); ("S", [ "a" ]) ]

  let instance =
    Instance.of_rows schema
      [
        ("R", [ [ v "a4"; v "a3" ]; [ v "a2"; v "a1" ]; [ v "a3"; v "a3" ] ]);
        ("S", [ [ v "a4" ]; [ v "a2" ]; [ v "a3" ] ]);
      ]

  let x = Term.var "x"
  let y = Term.var "y"

  let kappa =
    Ic.denial ~name:"kappa"
      [ Atom.make "S" [ x ]; Atom.make "R" [ x; y ]; Atom.make "S" [ y ] ]

  let q =
    Cq.make ~name:"Q" []
      [ Atom.make "S" [ x ]; Atom.make "R" [ x; y ]; Atom.make "S" [ y ] ]
end

module Hypergraph = struct
  let schema =
    Schema.of_list
      [ ("A", [ "x" ]); ("B", [ "x" ]); ("C", [ "x" ]); ("D", [ "x" ]); ("E", [ "x" ]) ]

  let instance =
    Instance.of_rows schema
      [
        ("A", [ [ v "a" ] ]);
        ("B", [ [ v "a" ] ]);
        ("C", [ [ v "a" ] ]);
        ("D", [ [ v "a" ] ]);
        ("E", [ [ v "a" ] ]);
      ]

  let x = Term.var "x"

  let dcs =
    [
      Ic.denial ~name:"be" [ Atom.make "B" [ x ]; Atom.make "E" [ x ] ];
      Ic.denial ~name:"bcd"
        [ Atom.make "B" [ x ]; Atom.make "C" [ x ]; Atom.make "D" [ x ] ];
      Ic.denial ~name:"ac" [ Atom.make "A" [ x ]; Atom.make "C" [ x ] ];
    ]
end

module Courses = struct
  let schema =
    Schema.of_list
      [ ("Dep", [ "dname"; "tstaff" ]); ("Course", [ "cname"; "tstaff"; "dname" ]) ]

  let instance =
    Instance.of_rows schema
      [
        ( "Dep",
          [
            [ v "Computing"; v "John" ];
            [ v "Philosophy"; v "Patrick" ];
            [ v "Math"; v "Kevin" ];
          ] );
        ( "Course",
          [
            [ v "COM08"; v "John"; v "Computing" ];
            [ v "Math01"; v "Kevin"; v "Math" ];
            [ v "HIST02"; v "Patrick"; v "Philosophy" ];
            [ v "Math08"; v "Eli"; v "Math" ];
            [ v "COM01"; v "John"; v "Computing" ];
          ] );
      ]

  let psi = Ic.ind ~sub:("Dep", [ 0; 1 ]) ~sup:("Course", [ 2; 1 ])

  let x = Term.var "x"
  let y = Term.var "y"
  let z = Term.var "z"

  let q =
    Cq.make ~name:"QA" [ x ]
      [ Atom.make "Dep" [ y; x ]; Atom.make "Course" [ z; x; y ] ]

  let q2 = Cq.make ~name:"QC" [ x ] [ Atom.make "Course" [ z; x; y ] ]
  let john = [ Value.str "John" ]
end

module Customers = struct
  let schema =
    Schema.of_list
      [ ("Cust", [ "cc"; "ac"; "phone"; "name"; "street"; "city"; "zip" ]) ]

  let row cc ac ph nm st ct zp = [ i cc; i ac; v ph; v nm; v st; v ct; v zp ]

  let instance =
    Instance.of_rows schema
      [
        ( "Cust",
          [
            row 44 131 "1234567" "mike" "mayfield" "NYC" "EH4 8LE";
            row 44 131 "3456789" "rick" "crichton" "NYC" "EH4 8LE";
            row 01 908 "3456789" "joe" "mtn ave" "NYC" "07974";
          ] );
      ]

  let fd1 = Ic.fd ~rel:"Cust" ~lhs:[ 0; 1; 2 ] ~rhs:[ 4; 5; 6 ]
  let fd2 = Ic.fd ~rel:"Cust" ~lhs:[ 0; 1 ] ~rhs:[ 5 ]

  let cfd =
    Ic.cfd ~rel:"Cust" ~lhs:[ 0; 6 ] ~rhs:[ 4 ]
      ~pat:[ (0, Some (Value.int 44)); (6, None); (4, None) ]

  let names_query =
    Cq.make ~name:"names" [ Term.var "n" ]
      [
        Atom.make "Cust"
          [
            Term.var "cc"; Term.var "ac"; Term.var "ph"; Term.var "n";
            Term.var "st"; Term.var "ct"; Term.var "zp";
          ];
      ]
end

module Universities = struct
  let global_schema =
    Schema.of_list [ ("Stds", [ "number"; "name"; "univ"; "field" ]) ]

  let x = Term.var "x"
  let y = Term.var "y"
  let z = Term.var "z"

  let gav_views =
    [
      Datalog.Rule.make
        (Atom.make "Stds" [ x; y; Term.str "cu"; z ])
        [ Atom.make "CUstds" [ x; y ]; Atom.make "SpecCU" [ x; z ] ];
      Datalog.Rule.make
        (Atom.make "Stds" [ x; y; Term.str "ou"; z ])
        [ Atom.make "OUstds" [ x; y ]; Atom.make "SpecOU" [ x; z ] ];
    ]

  let fact rel values = Fact.make rel (List.map v values)

  let sources_51 =
    [
      fact "CUstds" [ "101"; "john" ];
      fact "CUstds" [ "102"; "mary" ];
      fact "OUstds" [ "103"; "claire" ];
      fact "OUstds" [ "104"; "peter" ];
      fact "SpecCU" [ "101"; "alg" ];
      fact "SpecCU" [ "102"; "ai" ];
      fact "SpecOU" [ "103"; "db" ];
    ]

  let sources_52 =
    sources_51
    @ [ fact "OUstds" [ "101"; "sue" ]; fact "SpecOU" [ "101"; "bio" ] ]

  let global_fd = Ic.fd ~rel:"Stds" ~lhs:[ 0 ] ~rhs:[ 1 ]

  let students_query =
    Cq.make ~name:"students"
      [ Term.var "n"; Term.var "m" ]
      [ Atom.make "Stds" [ Term.var "n"; Term.var "m"; Term.var "u"; Term.var "f" ] ]
end
