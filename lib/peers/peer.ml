module Schema = Relational.Schema
module Instance = Relational.Instance
module Fact = Relational.Fact
module Value = Relational.Value
module Tid = Relational.Tid
module Ic = Constraints.Ic

type trust = More_trusted | Same_trusted

type mapping = {
  from_peer : string;
  query : Logic.Cq.t;
  target : string;
  trust : trust;
}

type peer = {
  name : string;
  schema : Schema.t;
  instance : Instance.t;
  ics : Ic.t list;
  mappings : mapping list;
}

module Smap = Map.Make (String)

type network = peer Smap.t

let check_acyclic peers =
  (* Edge: peer -> mapping source. *)
  let state = Hashtbl.create 8 in
  let rec dfs name =
    match Hashtbl.find_opt state name with
    | Some `Done -> ()
    | Some `Active -> invalid_arg "Peers.network: mapping cycle"
    | None -> (
        Hashtbl.replace state name `Active;
        (match Smap.find_opt name peers with
        | Some p -> List.iter (fun m -> dfs m.from_peer) p.mappings
        | None -> ());
        Hashtbl.replace state name `Done)
  in
  Smap.iter (fun name _ -> dfs name) peers

let network peer_list =
  let peers =
    List.fold_left
      (fun acc p ->
        if Smap.mem p.name acc then
          invalid_arg (Printf.sprintf "Peers.network: duplicate peer %s" p.name);
        Smap.add p.name p acc)
      Smap.empty peer_list
  in
  Smap.iter
    (fun _ p ->
      List.iter
        (fun ic ->
          if not (Ic.is_denial_class ic) then
            invalid_arg
              (Printf.sprintf
                 "Peers.network: peer %s has non-denial-class constraint %s"
                 p.name (Ic.name ic)))
        p.ics;
      List.iter
        (fun m ->
          if not (Smap.mem m.from_peer peers) then
            invalid_arg
              (Printf.sprintf "Peers.network: unknown peer %s" m.from_peer);
          if not (Schema.mem p.schema m.target) then
            invalid_arg
              (Printf.sprintf "Peers.network: unknown target relation %s"
                 m.target))
        p.mappings)
    peers;
  check_acyclic peers;
  peers

let peer net name =
  match Smap.find_opt name net with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Peers.peer: unknown peer %s" name)

let import_one net (p : peer) (m : mapping) =
  let source = peer net m.from_peer in
  let arity = Schema.arity p.schema m.target in
  let head_arity = Logic.Cq.arity m.query in
  if head_arity > arity then
    invalid_arg
      (Printf.sprintf "Peers: mapping head wider than target %s" m.target);
  List.map
    (fun row ->
      let padded = row @ List.init (arity - head_arity) (fun _ -> Value.Null) in
      (Fact.make m.target padded, m.trust))
    (Logic.Cq.answers m.query source.instance)

let imported_facts net name =
  let p = peer net name in
  List.concat_map (import_one net p) p.mappings

(* Solutions: hitting sets of the conflict hypergraph that avoid protected
   tuples. *)
let solutions net name =
  let p = peer net name in
  let imports = imported_facts net name in
  let candidate, protected_tids =
    List.fold_left
      (fun (db, prot) (f, trust) ->
        let db, tid = Instance.insert db f in
        let prot =
          match trust with
          | More_trusted -> Tid.Set.add tid prot
          | Same_trusted -> prot
        in
        (db, prot))
      (p.instance, Tid.Set.empty)
      imports
  in
  let g = Constraints.Conflict_graph.build candidate p.schema p.ics in
  let edges =
    List.map
      (fun e -> Tid.Set.elements (Tid.Set.diff e protected_tids))
      g.Constraints.Conflict_graph.edges
  in
  if List.exists (( = ) []) edges then []
  else
    let int_edges = List.map (List.map Tid.to_int) edges in
    List.map
      (fun hs ->
        let doomed =
          List.fold_left
            (fun s i -> Tid.Set.add (Tid.of_int i) s)
            Tid.Set.empty hs
        in
        Instance.restrict candidate (Tid.Set.diff (Instance.tids candidate) doomed))
      (Sat.Hitting_set.minimal int_edges)

module Rows = Set.Make (struct
  type t = Value.t list

  let compare = List.compare Value.compare
end)

let consistent_answers net name q =
  match solutions net name with
  | [] -> []
  | first :: rest ->
      let answers inst = Rows.of_list (Logic.Cq.answers q inst) in
      Rows.elements
        (List.fold_left
           (fun acc inst -> Rows.inter acc (answers inst))
           (answers first) rest)
