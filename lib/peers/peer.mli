(** Peer data exchange with trust and local repairs (paper, Section 4.2;
    Bertossi–Bravo [25]).

    Peers exchange data at query-answering time through inter-peer mappings
    — tgds whose bodies are conjunctive queries over a neighbour's schema
    and whose heads populate a local relation, existential positions padded
    with NULL (the null-based tuple-level repairs of Example 4.3).  Each
    mapping carries a trust annotation:

    - data imported from a {b more-trusted} peer is protected — a local
      repair may not delete it;
    - data from a {b same-or-less trusted} peer competes with local data on
      equal terms.

    A peer's {e solutions} are the S-repairs of its local data plus the
    imports, wrt. its local (denial-class) constraints, never deleting
    protected facts.  Peer consistent answers are certain over the
    solutions.  Import is one hop along the mapping graph, which must be
    acyclic (the acyclicity condition of [25]). *)

type trust = More_trusted | Same_trusted

type mapping = {
  from_peer : string;
  query : Logic.Cq.t;  (** over the neighbour's schema *)
  target : string;  (** local relation; the query's head fills its first
                        columns, remaining columns become NULL *)
  trust : trust;
}

type peer = {
  name : string;
  schema : Relational.Schema.t;
  instance : Relational.Instance.t;
  ics : Constraints.Ic.t list;
  mappings : mapping list;
}

type network

val network : peer list -> network
(** Raises [Invalid_argument] on duplicate peer names, unknown mapping
    sources, a mapping cycle, or non-denial-class local constraints. *)

val peer : network -> string -> peer

val imported_facts :
  network -> string -> (Relational.Fact.t * trust) list
(** The facts a peer imports through its mappings (one hop). *)

val solutions : network -> string -> Relational.Instance.t list
(** The peer's solution instances.  Empty when protected imports alone
    violate the local constraints (the peer has no coherent state). *)

val consistent_answers :
  network -> string -> Logic.Cq.t -> Relational.Value.t list list
(** Certain answers over the peer's solutions. *)
