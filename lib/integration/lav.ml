module Schema = Relational.Schema
module Instance = Relational.Instance
module Fact = Relational.Fact
module Value = Relational.Value
module Term = Logic.Term

type view = { source : string; head_vars : string list; body : Logic.Atom.t list }

type t = { global_schema : Schema.t; views : view list }

let make global_schema views =
  List.iter
    (fun v ->
      List.iter
        (fun (a : Logic.Atom.t) ->
          if not (Schema.mem global_schema a.rel) then
            invalid_arg
              (Printf.sprintf "Lav.make: view body %s not in global schema" a.rel))
        v.body)
    views;
  { global_schema; views }

let null_prefix = "\xe2\x8a\xa5" (* ⊥ *)

let is_labeled_null = function
  | Value.Str s -> String.length s >= 3 && String.sub s 0 3 = null_prefix
  | _ -> false

let canonical_instance t source_facts =
  let counter = ref 0 in
  let fresh_null () =
    incr counter;
    Value.Str (Printf.sprintf "%s%d" null_prefix !counter)
  in
  List.fold_left
    (fun acc (f : Fact.t) ->
      match List.find_opt (fun v -> String.equal v.source f.rel) t.views with
      | None -> acc
      | Some view ->
          if List.length view.head_vars <> Array.length f.row then
            invalid_arg
              (Printf.sprintf "Lav: arity mismatch for source %s" f.rel);
          let env = Hashtbl.create 8 in
          List.iteri
            (fun i v -> Hashtbl.replace env v f.row.(i))
            view.head_vars;
          (* Existential variables: one fresh labeled null per source
             tuple, shared across the body atoms it appears in. *)
          List.fold_left
            (fun acc (a : Logic.Atom.t) ->
              let args =
                List.map
                  (function
                    | Term.Const c -> c
                    | Term.Var x -> (
                        match Hashtbl.find_opt env x with
                        | Some v -> v
                        | None ->
                            let n = fresh_null () in
                            Hashtbl.replace env x n;
                            n))
                  a.args
              in
              Instance.add acc (Fact.make a.rel args))
            acc view.body)
    (Instance.create t.global_schema)
    source_facts

let certain_answers t source_facts q =
  let canonical = canonical_instance t source_facts in
  List.filter
    (fun row -> not (List.exists is_labeled_null row))
    (Logic.Cq.answers q canonical)
