module Value = Relational.Value

type engine = [ `Repair_enumeration | `Fo_rewriting | `Asp ]

module Rows = Set.Make (struct
  type t = Value.t list

  let compare = List.compare Value.compare
end)

let repair_enumeration_answers q schema ics inst =
  match Repairs.S_repair.enumerate inst schema ics with
  | [] -> []
  | first :: rest ->
      let answers (r : Repairs.Repair.t) =
        Rows.of_list (Logic.Cq.answers q r.repaired)
      in
      Rows.elements
        (List.fold_left
           (fun acc r -> Rows.inter acc (answers r))
           (answers first) rest)

let consistent_answers ?(engine = `Repair_enumeration) gav ~sources ~ics q =
  let retrieved = Gav.retrieved_instance gav sources in
  let schema = gav.Gav.global_schema in
  match engine with
  | `Repair_enumeration -> repair_enumeration_answers q schema ics retrieved
  | `Fo_rewriting ->
      Rewriting.Residue_rewrite.consistent_answers q schema ics retrieved
  | `Asp -> Repair_programs.Asp_cqa.consistent_answers q schema ics retrieved
