(** Consistent query answering on top of a virtual integration system
    (paper, Section 5, Example 5.2).

    Global ICs cannot be enforced on the sources — the mediator cannot
    update them — so they are applied at query-answering time: the
    retrieved global instance is (virtually) repaired and the query is
    answered consistently over it. *)

type engine =
  [ `Repair_enumeration  (** exact, exponential worst case *)
  | `Fo_rewriting  (** residue rewriting; sound for its class *)
  | `Asp  (** repair programs, cautious reasoning *) ]

val consistent_answers :
  ?engine:engine ->
  Gav.t ->
  sources:Relational.Fact.t list ->
  ics:Constraints.Ic.t list ->
  Logic.Cq.t ->
  Relational.Value.t list list
(** Default engine: [`Repair_enumeration]. *)
