module Schema = Relational.Schema
module Instance = Relational.Instance
module Fact = Relational.Fact

type t = { global_schema : Schema.t; views : Datalog.Rule.t list }

let make global_schema views =
  List.iter
    (fun (r : Datalog.Rule.t) ->
      let h = r.head in
      if not (Schema.mem global_schema h.Logic.Atom.rel) then
        invalid_arg
          (Printf.sprintf "Gav.make: view head %s not in the global schema"
             h.Logic.Atom.rel);
      if Logic.Atom.arity h <> Schema.arity global_schema h.Logic.Atom.rel then
        invalid_arg
          (Printf.sprintf "Gav.make: arity mismatch for %s" h.Logic.Atom.rel))
    views;
  { global_schema; views }

let retrieved_instance t source_facts =
  let derived = Datalog.Eval.run (Datalog.Program.make t.views) source_facts in
  Fact.Set.fold
    (fun (f : Fact.t) acc ->
      if Schema.mem t.global_schema f.rel then Instance.add acc f else acc)
    derived
    (Instance.create t.global_schema)

let answer t source_facts q =
  Logic.Cq.answers q (retrieved_instance t source_facts)
