(** Global-as-view virtual data integration (paper, Section 5).

    Global predicates are defined as Datalog views over the source
    relations (the paper's rules (8)–(9)).  Queries over the global schema
    are answered by unfolding, which for monotone queries coincides with
    evaluating them over the {e retrieved global instance} — the minimal
    admissible global instance materialized by the view rules. *)

type t = {
  global_schema : Relational.Schema.t;
  views : Datalog.Rule.t list;
      (** Heads over global predicates, bodies over source predicates. *)
}

val make : Relational.Schema.t -> Datalog.Rule.t list -> t
(** Raises [Invalid_argument] when a view head predicate is not in the
    global schema or its arity disagrees. *)

val retrieved_instance : t -> Relational.Fact.t list -> Relational.Instance.t
(** Materialize the minimal global instance from the source facts. *)

val answer :
  t -> Relational.Fact.t list -> Logic.Cq.t -> Relational.Value.t list list
(** Certain answers of a monotone query under GAV semantics. *)
