(** Local-as-view integration via the inverse-rules method (paper, Section
    5: the LAV side of the picture).

    Each source relation is declared as a conjunctive view over the global
    schema.  Inverting the views populates a {e canonical global instance}:
    each source tuple asserts the view body with the head variables bound
    and existential variables replaced by fresh labeled nulls.  Evaluating a
    CQ on the canonical instance and discarding answers that contain
    labeled nulls yields exactly the certain answers (for CQs without
    comparisons over the nulls). *)

type view = {
  source : string;
  head_vars : string list;
  body : Logic.Atom.t list;
      (** Over global predicates; variables not in [head_vars] are
          existential. *)
}

type t = { global_schema : Relational.Schema.t; views : view list }

val make : Relational.Schema.t -> view list -> t

val is_labeled_null : Relational.Value.t -> bool

val canonical_instance : t -> Relational.Fact.t list -> Relational.Instance.t

val certain_answers :
  t -> Relational.Fact.t list -> Logic.Cq.t -> Relational.Value.t list list
