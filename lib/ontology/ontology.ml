module Schema = Relational.Schema
module Instance = Relational.Instance
module Fact = Relational.Fact
module Value = Relational.Value

type concept = Atomic of string | Exists of string | Exists_inv of string

type axiom =
  | Subsumed of concept * concept
  | Disjoint of concept * concept
  | Functional of string
  | Inverse_functional of string

type assertion =
  | Concept_of of string * string
  | Role_of of string * string * string

type kb = { tbox : axiom list; abox : assertion array }

let make ~tbox ~abox = { tbox; abox = Array.of_list abox }

(* Reflexive-transitive closure of the concept inclusions, over the finite
   set of concepts mentioned anywhere. *)
let all_concepts kb =
  let add acc c = if List.mem c acc then acc else c :: acc in
  let from_tbox =
    List.fold_left
      (fun acc ax ->
        match ax with
        | Subsumed (c, d) | Disjoint (c, d) -> add (add acc c) d
        | Functional _ | Inverse_functional _ -> acc)
      [] kb.tbox
  in
  Array.fold_left
    (fun acc a ->
      match a with
      | Concept_of (c, _) -> add acc (Atomic c)
      | Role_of (r, _, _) -> add (add acc (Exists r)) (Exists_inv r))
    from_tbox kb.abox

let subsumers kb =
  let concepts = all_concepts kb in
  let direct c =
    List.filter_map
      (function Subsumed (c', d) when c' = c -> Some d | _ -> None)
      kb.tbox
  in
  let table = Hashtbl.create 16 in
  List.iter
    (fun c ->
      (* BFS up the inclusion hierarchy. *)
      let seen = ref [ c ] in
      let rec go frontier =
        let next =
          List.concat_map direct frontier
          |> List.filter (fun d -> not (List.mem d !seen))
          |> List.sort_uniq compare
        in
        if next <> [] then begin
          seen := next @ !seen;
          go next
        end
      in
      go [ c ];
      Hashtbl.replace table c !seen)
    concepts;
  fun c -> Option.value ~default:[ c ] (Hashtbl.find_opt table c)

(* Concepts an assertion directly supports, with the individual. *)
let supports = function
  | Concept_of (a, x) -> [ (Atomic a, x) ]
  | Role_of (r, x, y) -> [ (Exists r, x); (Exists_inv r, y) ]

let derived_concepts kb =
  let up = subsumers kb in
  fun assertion ->
    List.concat_map
      (fun (c, x) -> List.map (fun d -> (d, x)) (up c))
      (supports assertion)

let disjoint_pairs kb =
  List.concat_map
    (function
      | Disjoint (c, d) -> [ (c, d); (d, c) ]
      | Subsumed _ | Functional _ | Inverse_functional _ -> [])
    kb.tbox

let conflict_edges kb =
  let derive = derived_concepts kb in
  let disj = disjoint_pairs kb in
  let n = Array.length kb.abox in
  let derived = Array.init n (fun i -> derive kb.abox.(i)) in
  let edges = ref [] in
  let add e = if not (List.mem e !edges) then edges := e :: !edges in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      (* Disjointness at a shared individual. *)
      if
        List.exists
          (fun (c1, x1) ->
            List.exists
              (fun (c2, x2) ->
                String.equal x1 x2 && List.mem (c1, c2) disj)
              derived.(j))
          derived.(i)
      then add (List.sort_uniq compare [ i; j ])
    done
  done;
  (* Functionality. *)
  List.iter
    (fun ax ->
      match ax with
      | Functional r ->
          for i = 0 to n - 1 do
            for j = i + 1 to n - 1 do
              match kb.abox.(i), kb.abox.(j) with
              | Role_of (r1, a, b), Role_of (r2, a', b')
                when String.equal r1 r && String.equal r2 r
                     && String.equal a a'
                     && not (String.equal b b') ->
                  add [ i; j ]
              | _ -> ()
            done
          done
      | Inverse_functional r ->
          for i = 0 to n - 1 do
            for j = i + 1 to n - 1 do
              match kb.abox.(i), kb.abox.(j) with
              | Role_of (r1, a, b), Role_of (r2, a', b')
                when String.equal r1 r && String.equal r2 r
                     && String.equal b b'
                     && not (String.equal a a') ->
                  add [ i; j ]
              | _ -> ()
            done
          done
      | Subsumed _ | Disjoint _ -> ())
    kb.tbox;
  List.rev !edges

let conflicts kb =
  List.map (List.map (fun i -> kb.abox.(i))) (conflict_edges kb)

let is_consistent kb = conflict_edges kb = []

let repairs kb =
  let edges = conflict_edges kb in
  List.map
    (fun hs ->
      List.filteri (fun i _ -> not (List.mem i hs)) (Array.to_list kb.abox))
    (Sat.Hitting_set.minimal edges)
  |> fun keep -> if keep = [] && edges <> [] then [] else keep

let saturate kb assertions =
  let derive = derived_concepts kb in
  let atomic =
    List.concat_map
      (fun a ->
        List.filter_map
          (function
            | Atomic name, x -> Some (Concept_of (name, x))
            | (Exists _ | Exists_inv _), _ -> None)
          (derive a))
      assertions
  in
  List.sort_uniq compare (assertions @ atomic)

(* Build a relational instance from (saturated) assertions; the schema also
   declares the query's predicates so empty concepts evaluate cleanly. *)
let instance_of kb ~query assertions =
  let preds = Hashtbl.create 16 in
  let declare name arity =
    match Hashtbl.find_opt preds name with
    | Some a when a <> arity ->
        invalid_arg (Printf.sprintf "Ontology: %s used with arities %d and %d" name a arity)
    | Some _ -> ()
    | None -> Hashtbl.add preds name arity
  in
  List.iter
    (function
      | Concept_of (a, _) -> declare a 1
      | Role_of (r, _, _) -> declare r 2)
    assertions;
  List.iter
    (fun c -> match c with Atomic a -> declare a 1 | Exists r | Exists_inv r -> declare r 2)
    (all_concepts kb);
  List.iter
    (fun (at : Logic.Atom.t) -> declare at.rel (Logic.Atom.arity at))
    query.Logic.Cq.body;
  let schema =
    Hashtbl.fold
      (fun name arity acc ->
        Schema.add_relation acc ~name
          ~attributes:(List.init arity (fun i -> Printf.sprintf "x%d" i)))
      preds Schema.empty
  in
  List.fold_left
    (fun acc a ->
      match a with
      | Concept_of (c, x) -> Instance.add acc (Fact.make c [ Value.str x ])
      | Role_of (r, x, y) ->
          Instance.add acc (Fact.make r [ Value.str x; Value.str y ]))
    (Instance.create schema) assertions

type semantics = AR | IAR | Brave

(* The intersection of the repairs, computed without enumerating them: an
   assertion involved in any minimal conflict is excluded by some repair
   (one hitting set picks it), and a conflict-free assertion survives every
   repair — this is what makes IAR tractable. *)
let iar_base kb =
  let in_conflict = Hashtbl.create 16 in
  List.iter
    (fun edge -> List.iter (fun i -> Hashtbl.replace in_conflict i ()) edge)
    (conflict_edges kb);
  Array.to_list kb.abox
  |> List.filteri (fun i _ -> not (Hashtbl.mem in_conflict i))

module Rows = Set.Make (struct
  type t = Value.t list

  let compare = List.compare Value.compare
end)

let answers kb semantics q =
  let eval assertions =
    Rows.of_list (Logic.Cq.answers q (instance_of kb ~query:q (saturate kb assertions)))
  in
  match semantics with
  | IAR -> Rows.elements (eval (iar_base kb))
  | AR -> (
      match repairs kb with
      | [] -> []
      | first :: rest ->
          Rows.elements
            (List.fold_left
               (fun acc r -> Rows.inter acc (eval r))
               (eval first) rest))
  | Brave ->
      Rows.elements
        (List.fold_left
           (fun acc r -> Rows.union acc (eval r))
           Rows.empty (repairs kb))

let entails kb semantics q =
  if Logic.Cq.is_boolean q then
    match semantics with
    | Brave ->
        List.exists
          (fun r ->
            Logic.Cq.holds q (instance_of kb ~query:q (saturate kb r)))
          (repairs kb)
    | AR ->
        let rs = repairs kb in
        rs <> []
        && List.for_all
             (fun r ->
               Logic.Cq.holds q (instance_of kb ~query:q (saturate kb r)))
             rs
    | IAR ->
        Logic.Cq.holds q (instance_of kb ~query:q (saturate kb (iar_base kb)))
  else answers kb semantics q <> []
