(** Inconsistency-tolerant ontology-based data access (paper, Section 8:
    "in OBDA it is not unlikely that the combination of data, rules and
    constraints produces inconsistencies"; Lembo et al. [79], Bienvenu et
    al. [29, 30], Rosati [100]).

    A DL-Lite-style knowledge base: a TBox of concept inclusions,
    disjointness axioms and role functionality, over an ABox of concept and
    role assertions.  TBox axioms cannot be doubted; inconsistency is
    resolved by repairing the ABox, and queries are answered under the
    standard inconsistency-tolerant semantics:

    - {b AR}: true in every ABox repair (the CQA semantics);
    - {b IAR}: true in the intersection of the repairs — sound for AR and
      computable without enumerating repairs;
    - {b brave}: true in at least one repair.

    IAR ⊆ AR ⊆ brave.

    Query answering saturates the ABox with the entailed atomic assertions
    (concept inclusions applied to concept and role memberships).
    Existential witnesses introduced by [⊑ ∃R] axioms are not invented, so
    answering is sound and complete for queries over atomic concepts and
    roles whose join variables range over ABox individuals (the instance-
    query fragment; full PerfectRef-style rewriting is out of scope). *)

type concept =
  | Atomic of string
  | Exists of string  (** ∃R: things with an R-successor *)
  | Exists_inv of string  (** ∃R⁻: things with an R-predecessor *)

type axiom =
  | Subsumed of concept * concept
  | Disjoint of concept * concept
  | Functional of string
  | Inverse_functional of string

type assertion =
  | Concept_of of string * string  (** A(a) *)
  | Role_of of string * string * string  (** R(a, b) *)

type kb

val make : tbox:axiom list -> abox:assertion list -> kb

val is_consistent : kb -> bool

val conflicts : kb -> assertion list list
(** Minimal conflicting assertion sets (size 1 or 2 in this fragment). *)

val repairs : kb -> assertion list list
(** The ABox repairs: maximal conflict-free subsets. *)

val saturate : kb -> assertion list -> assertion list
(** All atomic assertions entailed by the TBox from the given ABox. *)

type semantics = AR | IAR | Brave

val answers :
  kb -> semantics -> Logic.Cq.t -> Relational.Value.t list list
(** Query atoms use concept names as unary and role names as binary
    predicates. *)

val entails : kb -> semantics -> Logic.Cq.t -> bool
(** Boolean query under the chosen semantics. *)
