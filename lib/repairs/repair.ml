module Instance = Relational.Instance
module Fact = Relational.Fact

type actions = [ `Delete_only | `Delete_insert ]

type t = {
  original : Instance.t;
  repaired : Instance.t;
  deleted : Fact.Set.t;
  inserted : Fact.Set.t;
}

let make ~original repaired =
  let of_ = Instance.facts original and rf = Instance.facts repaired in
  {
    original;
    repaired;
    deleted = Fact.Set.diff of_ rf;
    inserted = Fact.Set.diff rf of_;
  }

let delta t = Fact.Set.union t.deleted t.inserted
let cost t = Fact.Set.cardinal t.deleted + Fact.Set.cardinal t.inserted
let is_deletion_only t = Fact.Set.is_empty t.inserted
let equal a b = Fact.Set.equal (delta a) (delta b)

let compare_by_delta a b = Fact.Set.compare (delta a) (delta b)

let minimal_under_inclusion repairs =
  List.filter
    (fun r ->
      let d = delta r in
      not
        (List.exists
           (fun r' ->
             let d' = delta r' in
             Fact.Set.subset d' d && not (Fact.Set.equal d' d))
           repairs))
    repairs

let pp ppf t =
  Format.fprintf ppf "@[<v>deleted: %a@,inserted: %a@]" Fact.set_pp t.deleted
    Fact.set_pp t.inserted
