module Instance = Relational.Instance
module Tid = Relational.Tid
module Ic = Constraints.Ic
module Conflict_graph = Constraints.Conflict_graph

let denial_only = List.for_all Ic.is_denial_class

let c_requests = Obs.Counter.make "repairs.c_requests"

let hypergraph_minimum inst schema ics =
  let g = Conflict_graph.build_cached inst schema ics in
  Sat.Hitting_set.minimum (Conflict_graph.edges_as_int_lists g)

let repair_of_deletion inst hs =
  let doomed =
    List.fold_left (fun s i -> Tid.Set.add (Tid.of_int i) s) Tid.Set.empty hs
  in
  let keep = Tid.Set.diff (Instance.tids inst) doomed in
  Repair.make ~original:inst (Instance.restrict inst keep)

let minimum_cost ?actions ?fuel inst schema ics =
  if denial_only ics then
    Option.map List.length (hypergraph_minimum inst schema ics)
  else
    match S_repair.enumerate ?actions ?fuel inst schema ics with
    | [] -> None
    | repairs ->
        Some (List.fold_left (fun m r -> min m (Repair.cost r)) max_int repairs)

let one ?actions ?fuel inst schema ics =
  if denial_only ics then
    Option.map (repair_of_deletion inst) (hypergraph_minimum inst schema ics)
  else
    match S_repair.enumerate ?actions ?fuel inst schema ics with
    | [] -> None
    | repairs ->
        let best =
          List.fold_left
            (fun best r ->
              match best with
              | Some b when Repair.cost b <= Repair.cost r -> best
              | _ -> Some r)
            None repairs
        in
        best

let enumerate ?actions ?fuel inst schema ics =
  let sp = Obs.Trace.start "repairs.c_enumerate" in
  Obs.Counter.incr c_requests;
  Obs.Progress.phase "repairs.c_enumerate";
  match
    match minimum_cost ?actions ?fuel inst schema ics with
    | None -> []
    | Some k ->
        List.filter
          (fun r -> Repair.cost r = k)
          (S_repair.enumerate ?actions ?fuel inst schema ics)
  with
  | repairs ->
      if Obs.Trace.is_enabled () then
        Obs.Trace.attr_int "repairs" (List.length repairs);
      Obs.Trace.finish sp;
      repairs
  | exception e ->
      Obs.Trace.finish sp;
      raise e

let count ?actions ?fuel inst schema ics =
  List.length (enumerate ?actions ?fuel inst schema ics)
