module Instance = Relational.Instance
module Value = Relational.Value
module Ic = Constraints.Ic

type agg = Count_all | Sum of int | Min of int | Max of int

type range = { glb : float; lub : float }

let numeric = function
  | Value.Int i -> Some (float_of_int i)
  | Value.Real r -> Some r
  | Value.Null -> None
  | Value.Str _ | Value.Bool _ ->
      invalid_arg "Aggregate: non-numeric value under a numeric aggregate"

let eval_agg rows agg =
  match agg with
  | Count_all -> float_of_int (List.length rows)
  | Sum p ->
      List.fold_left
        (fun acc (row : Value.t array) ->
          match numeric row.(p) with Some x -> acc +. x | None -> acc)
        0.0 rows
  | Min p ->
      List.fold_left
        (fun acc (row : Value.t array) ->
          match numeric row.(p) with Some x -> Float.min acc x | None -> acc)
        infinity rows
  | Max p ->
      List.fold_left
        (fun acc (row : Value.t array) ->
          match numeric row.(p) with Some x -> Float.max acc x | None -> acc)
        neg_infinity rows

let range_by_enumeration inst schema ics ~rel agg =
  match S_repair.enumerate inst schema ics with
  | [] -> failwith "Aggregate.range: no repair"
  | repairs ->
      List.fold_left
        (fun acc (r : Repair.t) ->
          let x = eval_agg (Instance.rows r.repaired ~rel) agg in
          { glb = Float.min acc.glb x; lub = Float.max acc.lub x })
        { glb = infinity; lub = neg_infinity }
        repairs

(* Key blocks of [rel]: (fixed rows, conflicting blocks). *)
let blocks_of inst ~rel ~key =
  let groups = Hashtbl.create 32 in
  let fixed = ref [] in
  List.iter
    (fun (_tid, row) ->
      let k = List.map (fun i -> row.(i)) key in
      if List.exists Value.is_null k then fixed := row :: !fixed
      else
        Hashtbl.replace groups k
          (row :: Option.value ~default:[] (Hashtbl.find_opt groups k)))
    (Instance.tuples inst ~rel);
  let blocks = ref [] in
  Hashtbl.iter
    (fun _ rows ->
      match rows with
      | [ single ] -> fixed := single :: !fixed
      | _ -> blocks := rows :: !blocks)
    groups;
  (!fixed, !blocks)

let closed_form inst ~rel ~key agg =
  let fixed, blocks = blocks_of inst ~rel ~key in
  match agg with
  | Count_all ->
      let n = float_of_int (List.length fixed + List.length blocks) in
      { glb = n; lub = n }
  | Sum p ->
      let contribution row =
        match numeric (row : Value.t array).(p) with Some x -> x | None -> 0.0
      in
      let fixed_sum = List.fold_left (fun acc r -> acc +. contribution r) 0.0 fixed in
      let fold pick =
        List.fold_left
          (fun acc block ->
            acc
            +. List.fold_left
                 (fun best r -> pick best (contribution r))
                 (contribution (List.hd block))
                 (List.tl block))
          fixed_sum blocks
      in
      { glb = fold Float.min; lub = fold Float.max }
  | Min p ->
      (* glb: any block may elect its smallest claimant, so the global
         minimum over all values is reachable.  lub: per block, electing a
         NULL-valued claimant removes the block from the MIN; otherwise the
         best the block can offer is its maximum. *)
      let fixed_min = eval_agg fixed (Min p) in
      let glb = Float.min fixed_min (eval_agg (List.concat blocks) (Min p)) in
      let lub =
        List.fold_left
          (fun acc block ->
            if List.exists (fun (r : Value.t array) -> numeric r.(p) = None) block
            then acc
            else Float.min acc (eval_agg block (Max p)))
          fixed_min blocks
      in
      { glb; lub }
  | Max p ->
      let fixed_max = eval_agg fixed (Max p) in
      let lub = Float.max fixed_max (eval_agg (List.concat blocks) (Max p)) in
      let glb =
        List.fold_left
          (fun acc block ->
            if List.exists (fun (r : Value.t array) -> numeric r.(p) = None) block
            then acc
            else Float.max acc (eval_agg block (Min p)))
          fixed_max blocks
      in
      { glb; lub }

let range inst schema ics ~rel agg =
  let keys =
    List.filter_map (function Ic.Key (r, ps) -> Some (r, ps) | _ -> None) ics
  in
  let rels = List.map fst keys in
  let pure_keys =
    List.length keys = List.length ics
    && List.length (List.sort_uniq String.compare rels) = List.length rels
  in
  if pure_keys then
    match List.assoc_opt rel keys with
    | Some key -> closed_form inst ~rel ~key agg
    | None ->
        (* No constraint touches [rel]: the aggregate is fixed. *)
        let x = eval_agg (Instance.rows inst ~rel) agg in
        { glb = x; lub = x }
  else range_by_enumeration inst schema ics ~rel agg
