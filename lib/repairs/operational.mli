(** Operational repair semantics (paper, Section 8 pointer to
    Calautti–Libkin–Pieris [36], and the probabilistic relaxations of
    Section 6).

    Instead of quantifying over all repairs, run a randomized repairing
    {e process}: repeatedly pick a violation and delete one of its tuples,
    uniformly at random, until consistent — every run ends in an S-repair
    (for denial-class constraints), and the process induces a probability
    distribution over repairs.  Sampling that distribution gives Monte
    Carlo estimates of answer probabilities, the "true in most repairs"
    relaxation the paper mentions for data cleaning. *)

val sample_repair :
  ?seed:int ->
  Relational.Instance.t ->
  Relational.Schema.t ->
  Constraints.Ic.t list ->
  Repair.t
(** One run of the operational process.  Denial-class constraints only
    ([Invalid_argument] otherwise). *)

val answer_probability :
  ?seed:int ->
  ?samples:int ->
  Relational.Instance.t ->
  Relational.Schema.t ->
  Constraints.Ic.t list ->
  Logic.Cq.t ->
  (Relational.Value.t list * float) list
(** Monte Carlo estimate of each answer's probability under the
    operational distribution ([samples] defaults to 200), most probable
    first. *)

val probable_answers :
  ?seed:int ->
  ?samples:int ->
  ?threshold:float ->
  Relational.Instance.t ->
  Relational.Schema.t ->
  Constraints.Ic.t list ->
  Logic.Cq.t ->
  Relational.Value.t list list
(** Answers whose estimated probability exceeds [threshold] (default 0.5,
    i.e. "true in most repairs"). *)
