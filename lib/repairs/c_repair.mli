(** C-repairs: S-repairs of minimum cardinality |D Δ D'| (paper, Section
    4.1, after Arenas–Bertossi–Chomicki [6] and Lopatenko–Bertossi [87]).

    For denial-class constraints one C-repair is found without enumerating
    all S-repairs, by branch-and-bound minimum hitting set on the conflict
    hypergraph (SAT-based); enumeration filters the minimal hitting sets by
    cardinality. *)

val minimum_cost :
  ?actions:Repair.actions ->
  ?fuel:int ->
  Relational.Instance.t ->
  Relational.Schema.t ->
  Constraints.Ic.t list ->
  int option
(** The cardinality of a C-repair's delta; [None] if no repair exists
    (possible only with [`Delete_only] dead ends or unhittable edges). *)

val one :
  ?actions:Repair.actions ->
  ?fuel:int ->
  Relational.Instance.t ->
  Relational.Schema.t ->
  Constraints.Ic.t list ->
  Repair.t option

val enumerate :
  ?actions:Repair.actions ->
  ?fuel:int ->
  Relational.Instance.t ->
  Relational.Schema.t ->
  Constraints.Ic.t list ->
  Repair.t list
(** All C-repairs, in stable (delta) order. *)

val count :
  ?actions:Repair.actions ->
  ?fuel:int ->
  Relational.Instance.t ->
  Relational.Schema.t ->
  Constraints.Ic.t list ->
  int
