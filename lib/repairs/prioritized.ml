module Instance = Relational.Instance
module Tid = Relational.Tid
module Fact = Relational.Fact

type priority = Tid.t -> Tid.t -> bool

(* The definitions compare deletion-only repairs through what they keep;
   X∖Y = tuples deleted by Y but kept by X. *)
let kept_by_only ~original (x : Repair.t) (y : Repair.t) =
  Fact.Set.fold
    (fun f acc ->
      if Instance.mem_fact x.repaired f then
        match Instance.tid_of original f with
        | Some tid -> tid :: acc
        | None -> acc
      else acc)
    y.deleted []

let is_global_improvement p ~original x y =
  let x_only = kept_by_only ~original x y in
  let y_only = kept_by_only ~original y x in
  (not (Repair.equal x y))
  && x_only <> []
  && List.for_all (fun t -> List.exists (fun t' -> p t' t) y_only) x_only

let is_pareto_improvement p ~original x y =
  let x_only = kept_by_only ~original x y in
  let y_only = kept_by_only ~original y x in
  (not (Repair.equal x y))
  && x_only <> []
  && List.exists (fun t' -> List.for_all (fun t -> p t' t) x_only) y_only

let optimal ~improves p inst schema ics =
  let repairs = S_repair.enumerate inst schema ics in
  List.filter
    (fun x ->
      not (List.exists (fun y -> improves p ~original:inst x y) repairs))
    repairs

let globally_optimal p inst schema ics =
  optimal ~improves:is_global_improvement p inst schema ics

let pareto_optimal p inst schema ics =
  optimal ~improves:is_pareto_improvement p inst schema ics

let greedy_completion ~order inst schema ics =
  List.iter
    (fun ic ->
      if not (Constraints.Ic.is_denial_class ic) then
        invalid_arg "Prioritized.greedy_completion: denial-class constraints only")
    ics;
  let consistent db = Constraints.Violation.is_consistent db schema ics in
  let base = Instance.create (Instance.schema inst) in
  let kept =
    List.fold_left
      (fun db tid ->
        match Instance.find_fact inst tid with
        | None -> db
        | Some f ->
            let db' = Instance.add db f in
            if consistent db' then db' else db)
      base order
  in
  (* Tuples outside [order] are appended afterwards, in tid order, so the
     result is a maximal consistent sub-instance. *)
  let rest =
    Tid.Set.elements
      (Tid.Set.filter
         (fun t -> not (List.exists (Tid.equal t) order))
         (Instance.tids inst))
  in
  let repaired =
    List.fold_left
      (fun db tid ->
        let db' = Instance.add db (Instance.fact_of inst tid) in
        if consistent db' then db' else db)
      kept rest
  in
  Repair.make ~original:inst repaired

module Rows = Set.Make (struct
  type t = Relational.Value.t list

  let compare = List.compare Relational.Value.compare
end)

let consistent_answers ~semantics p inst schema ics q =
  let repairs =
    match semantics with
    | `Global -> globally_optimal p inst schema ics
    | `Pareto -> pareto_optimal p inst schema ics
  in
  match repairs with
  | [] -> []
  | first :: rest ->
      let answers (r : Repair.t) = Rows.of_list (Logic.Cq.answers q r.repaired) in
      Rows.elements
        (List.fold_left
           (fun acc r -> Rows.inter acc (answers r))
           (answers first) rest)
