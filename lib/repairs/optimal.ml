module Instance = Relational.Instance
module Tid = Relational.Tid
module Ic = Constraints.Ic
module Conflict_graph = Constraints.Conflict_graph

let keys_only ics = List.for_all (function Ic.Key _ -> true | _ -> false) ics

(* Keys: keep the heaviest claimant per block — linear time. *)
let optimal_for_keys ~weight inst ics =
  let doomed = ref Tid.Set.empty in
  List.iter
    (fun ic ->
      match ic with
      | Ic.Key (rel, key) ->
          let groups = Hashtbl.create 32 in
          List.iter
            (fun (tid, row) ->
              let k = List.map (fun i -> row.(i)) key in
              if not (List.exists Relational.Value.is_null k) then
                Hashtbl.replace groups k
                  (tid :: Option.value ~default:[] (Hashtbl.find_opt groups k)))
            (Instance.tuples inst ~rel);
          Hashtbl.iter
            (fun _ tids ->
              match tids with
              | [] | [ _ ] -> ()
              | _ ->
                  let best =
                    List.fold_left
                      (fun best tid ->
                        match best with
                        | Some b when weight b >= weight tid -> best
                        | _ -> Some tid)
                      None tids
                  in
                  List.iter
                    (fun tid ->
                      if Some tid <> best then doomed := Tid.Set.add tid !doomed)
                    tids)
            groups
      | _ -> assert false)
    ics;
  let keep = Tid.Set.diff (Instance.tids inst) !doomed in
  Some (Repair.make ~original:inst (Instance.restrict inst keep))

let optimal_repair ~weight inst schema ics =
  List.iter
    (fun ic ->
      if not (Ic.is_denial_class ic) then
        invalid_arg
          (Printf.sprintf "Optimal.optimal_repair: %s is not denial-class"
             (Ic.name ic)))
    ics;
  if keys_only ics then optimal_for_keys ~weight inst ics
  else
    let g = Conflict_graph.build_cached inst schema ics in
    let edges = Conflict_graph.edges_as_int_lists g in
    match
      Sat.Hitting_set.minimum_weighted
        ~weight:(fun i -> weight (Tid.of_int i))
        edges
    with
    | None -> None
    | Some hs ->
        let doomed =
          List.fold_left
            (fun s i -> Tid.Set.add (Tid.of_int i) s)
            Tid.Set.empty hs
        in
        let keep = Tid.Set.diff (Instance.tids inst) doomed in
        Some (Repair.make ~original:inst (Instance.restrict inst keep))

let kept_weight ~weight ~original (r : Repair.t) =
  Tid.Set.fold
    (fun tid acc ->
      if Instance.mem_fact r.repaired (Instance.fact_of original tid) then
        acc +. weight tid
      else acc)
    (Instance.tids original) 0.0

let is_optimal ~weight inst schema ics r =
  let repairs = S_repair.enumerate inst schema ics in
  let w = kept_weight ~weight ~original:inst r in
  List.for_all
    (fun r' -> kept_weight ~weight ~original:inst r' <= w +. 1e-9)
    repairs
