(** Counting repairs (paper, Section 3.2; Maslowski–Wijsen [90],
    Livshits–Kimelfeld [84]).

    For denial-class constraints the number of S-repairs equals the number
    of minimal hitting sets of the conflict hypergraph; for pure primary-key
    conflicts there is a closed form — every key block contributes a factor
    equal to its size (each repair keeps exactly one claimant per block) —
    which is the tractable side of the counting dichotomy. *)

val s_repairs :
  Relational.Instance.t -> Relational.Schema.t -> Constraints.Ic.t list -> int
(** Exact count; uses the closed form when all constraints are primary keys
    and hypergraph hitting-set counting otherwise. *)

val c_repairs :
  Relational.Instance.t -> Relational.Schema.t -> Constraints.Ic.t list -> int

val key_blocks :
  Relational.Instance.t ->
  Relational.Schema.t ->
  rel:string ->
  key:int list ->
  int list
(** Sizes of the key-equal tuple groups with at least two claimants. *)

val closed_form_keys :
  Relational.Instance.t -> Relational.Schema.t -> Constraints.Ic.t list ->
  int option
(** Product of block sizes, when every constraint is a primary key (at most
    one per relation); [None] otherwise. *)
