(** Repair checking (paper, Section 3.2; Afrati–Kolaitis, Chomicki–
    Marcinkowski): decide whether a candidate instance is a repair of a
    given database.

    Minimality is verified exactly, by checking that no proper subset of
    the symmetric difference already restores consistency; the subset
    enumeration is exponential in |Δ|, so it is guarded by [max_delta]. *)

val is_consistent :
  Relational.Instance.t -> Relational.Schema.t -> Constraints.Ic.t list -> bool

val is_s_repair :
  ?max_delta:int ->
  original:Relational.Instance.t ->
  Relational.Schema.t ->
  Constraints.Ic.t list ->
  Relational.Instance.t ->
  bool
(** [max_delta] (default 20) caps |Δ| for the exact subset test; beyond it
    the function raises [Invalid_argument]. *)

val is_c_repair :
  ?actions:Repair.actions ->
  original:Relational.Instance.t ->
  Relational.Schema.t ->
  Constraints.Ic.t list ->
  Relational.Instance.t ->
  bool
(** Consistent and of minimum delta cardinality. *)
