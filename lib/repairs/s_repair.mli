(** S-repairs: consistent instances at set-inclusion-minimal symmetric
    difference from the original (paper, Section 3.1).

    Two engines:
    - for denial-class constraint sets, repairs are computed through the
      conflict hypergraph: minimal hitting sets of the violation edges are
      exactly the minimal deletion sets;
    - for sets containing inclusion dependencies, a branching repair search
      explores per-violation fixes (delete a violating tuple, or — under
      [`Delete_insert] — insert the missing tuple, padding existential
      positions with NULL).  Complete for acyclic IND sets. *)

exception Out_of_fuel
(** Raised when the branching search exceeds its state budget. *)

val enumerate :
  ?actions:Repair.actions ->
  ?fuel:int ->
  Relational.Instance.t ->
  Relational.Schema.t ->
  Constraints.Ic.t list ->
  Repair.t list
(** All S-repairs, in stable (delta) order.  [actions] defaults to
    [`Delete_insert].  [fuel] (default [100_000]) bounds the number of
    states the branching search may visit; the hypergraph engine ignores
    it. *)

val one :
  ?actions:Repair.actions ->
  ?fuel:int ->
  Relational.Instance.t ->
  Relational.Schema.t ->
  Constraints.Ic.t list ->
  Repair.t option
(** Some S-repair, computed greedily (for denial-class constraints this is
    a single greedy maximal-independent-set pass, no enumeration). *)

val count :
  ?actions:Repair.actions ->
  ?fuel:int ->
  Relational.Instance.t ->
  Relational.Schema.t ->
  Constraints.Ic.t list ->
  int
