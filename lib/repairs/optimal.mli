(** Computing an optimal (maximum-weight) repair (paper, Section 3.2;
    Livshits–Kimelfeld–Roy [85] "Computing Optimal Repairs for Functional
    Dependencies").

    Tuples carry non-negative weights (reliability, trust, recency...); an
    optimal repair is a consistent sub-instance maximizing the total kept
    weight — equivalently, deleting a minimum-weight hitting set of the
    conflict hypergraph.  For primary keys the problem is polynomial: keep
    the heaviest claimant of every block (the tractable side of the [85]
    dichotomy); general denial-class constraints go through weighted
    branch-and-bound. *)

val optimal_repair :
  weight:(Relational.Tid.t -> float) ->
  Relational.Instance.t ->
  Relational.Schema.t ->
  Constraints.Ic.t list ->
  Repair.t option
(** Denial-class constraints only; [None] only when some violation cannot
    be repaired by deletions (impossible for denial constraints with
    non-empty witnesses, so in practice always [Some]). *)

val kept_weight : weight:(Relational.Tid.t -> float) ->
  original:Relational.Instance.t -> Repair.t -> float

val is_optimal :
  weight:(Relational.Tid.t -> float) ->
  Relational.Instance.t ->
  Relational.Schema.t ->
  Constraints.Ic.t list ->
  Repair.t ->
  bool
(** Exact check by comparing against the enumerated S-repairs. *)
