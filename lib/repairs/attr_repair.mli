(** Attribute-level null-based repairs (paper, Section 4.3 / Example 4.4).

    A repair is obtained by changing a minimal set of attribute values to
    NULL so that every denial-constraint violation loses a join, comparison
    or constant match.  Change sets are sets of cells [tid[pos]] (1-based
    positions, as in the paper).

    Only denial-class constraints are supported: setting cells to NULL can
    only remove matches of a positive body, so the repaired instance is
    consistent exactly when every violation's "breakable" cells are hit —
    which reduces the semantics to minimal hitting sets over cells. *)

type t = {
  changes : Relational.Tid.Cell.Set.t;
  repaired : Relational.Instance.t;
}

val breakable_cells :
  Constraints.Violation.witness ->
  Constraints.Ic.denial ->
  Relational.Tid.Cell.Set.t
(** The cells of one violation whose change to NULL kills it: positions
    holding a constant of the constraint, a join variable (occurring at
    least twice in the body), or a variable used in a comparison. *)

val enumerate :
  Relational.Instance.t ->
  Relational.Schema.t ->
  Constraints.Ic.t list ->
  t list
(** All minimal-change attribute repairs.  Raises [Invalid_argument] on
    non-denial-class constraints.  Returns [] when some violation has no
    breakable cell (then no attribute repair exists). *)

val minimum :
  Relational.Instance.t ->
  Relational.Schema.t ->
  Constraints.Ic.t list ->
  t option
(** An attribute repair with the fewest changed cells. *)

val apply_changes :
  Relational.Instance.t -> Relational.Tid.Cell.t list -> Relational.Instance.t

val pp : Format.formatter -> t -> unit
