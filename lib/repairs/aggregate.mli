(** Range-consistent answers for scalar aggregation queries (paper, Section
    3.2; Arenas–Bertossi–Chomicki–He–Raghavan–Spinrad [5]).

    For an aggregate over an inconsistent database, the consistent answer
    is an interval: the greatest lower bound and least upper bound of the
    aggregate's value across all repairs.  For a single primary key the
    bounds have closed forms over the key blocks (each repair keeps exactly
    one claimant per block); for general denial-class constraints the
    bounds are computed by repair enumeration. *)

type agg = Count_all | Sum of int | Min of int | Max of int
(** The attribute position (0-based) being aggregated; [Count_all] is
    SQL's count-star. *)

type range = { glb : float; lub : float }

val range :
  Relational.Instance.t ->
  Relational.Schema.t ->
  Constraints.Ic.t list ->
  rel:string ->
  agg ->
  range
(** Raises [Invalid_argument] when a [Sum]/[Min]/[Max] attribute holds
    non-numeric values, and [Failure] when there is no repair.  NULLs are
    ignored by the aggregate, as in SQL. *)

val range_by_enumeration :
  Relational.Instance.t ->
  Relational.Schema.t ->
  Constraints.Ic.t list ->
  rel:string ->
  agg ->
  range
(** The enumeration fallback, exposed for differential testing against the
    closed forms. *)
