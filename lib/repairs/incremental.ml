module Instance = Relational.Instance
module Tid = Relational.Tid
module Fact = Relational.Fact
module Tvl = Relational.Tvl
module Ic = Constraints.Ic
module Binding = Logic.Binding
module Cq = Logic.Cq

module Edge_set = Set.Make (Tid.Set)

type t = {
  inst : Instance.t;
  schema : Relational.Schema.t;
  ics : Ic.t list;
  denials : Ic.denial list;
  edges : Edge_set.t;
}

let graph t =
  {
    Constraints.Conflict_graph.vertices = Instance.tids t.inst;
    edges = Edge_set.elements t.edges;
  }

let instance t = t.inst
let is_consistent t = Edge_set.is_empty t.edges

let create inst schema ics =
  let denials =
    List.concat_map
      (fun ic ->
        match Ic.to_denials schema ic with
        | Some ds -> ds
        | None ->
            invalid_arg
              (Printf.sprintf "Incremental.create: %s is not denial-class"
                 (Ic.name ic)))
      ics
  in
  let edges =
    List.fold_left
      (fun acc (w : Constraints.Violation.witness) -> Edge_set.add w.tids acc)
      Edge_set.empty
      (Constraints.Violation.all inst schema ics)
  in
  { inst; schema; ics; denials; edges }

(* Violation witnesses of one denial that involve the pinned tuple: the
   pinned atom is matched first against just that tuple, the rest of the
   body against the whole (updated) instance. *)
let witnesses_pinned inst (d : Ic.denial) ~tid ~row =
  let cmp_ready env c = List.for_all (Binding.mem env) (Logic.Cmp.vars c) in
  let rec search env tids atoms comps acc =
    let ready, pending = List.partition (cmp_ready env) comps in
    if
      not (List.for_all (fun c -> Tvl.to_bool (Binding.eval_cmp env c)) ready)
    then acc
    else
      match atoms with
      | [] -> tids :: acc
      | (a : Logic.Atom.t) :: rest ->
          List.fold_left
            (fun acc (tid', row') ->
              match Cq.match_row env a row' with
              | Some env' -> search env' (Tid.Set.add tid' tids) rest pending acc
              | None -> acc)
            acc
            (Instance.tuples inst ~rel:a.Logic.Atom.rel)
  in
  let n = List.length d.atoms in
  let rec pin i acc =
    if i >= n then acc
    else
      let pinned = List.nth d.atoms i in
      let rest = List.filteri (fun j _ -> j <> i) d.atoms in
      let acc =
        match Cq.match_row Binding.empty pinned row with
        | Some env ->
            search env (Tid.Set.singleton tid) rest d.comps acc
        | None -> acc
      in
      pin (i + 1) acc
  in
  pin 0 []

let insert t fact =
  let inst', tid = Instance.insert t.inst fact in
  if inst' == t.inst then (t, tid)
  else
    let new_edges =
      List.concat_map
        (fun (d : Ic.denial) ->
          if
            List.exists
              (fun (a : Logic.Atom.t) -> String.equal a.rel fact.Fact.rel)
              d.atoms
          then witnesses_pinned inst' d ~tid ~row:fact.Fact.row
          else [])
        t.denials
    in
    let edges =
      List.fold_left (fun acc e -> Edge_set.add e acc) t.edges new_edges
    in
    ({ t with inst = inst'; edges }, tid)

let delete t tid =
  {
    t with
    inst = Instance.delete t.inst tid;
    edges = Edge_set.filter (fun e -> not (Tid.Set.mem tid e)) t.edges;
  }

let s_repairs t =
  let edges =
    List.map
      (fun e -> List.map Tid.to_int (Tid.Set.elements e))
      (Edge_set.elements t.edges)
  in
  List.map
    (fun hs ->
      let doomed =
        List.fold_left (fun s i -> Tid.Set.add (Tid.of_int i) s) Tid.Set.empty hs
      in
      let keep = Tid.Set.diff (Instance.tids t.inst) doomed in
      Repair.make ~original:t.inst (Instance.restrict t.inst keep))
    (Sat.Hitting_set.minimal edges)
  |> List.sort Repair.compare_by_delta

module Rows = Set.Make (struct
  type t = Relational.Value.t list

  let compare = List.compare Relational.Value.compare
end)

let consistent_answers t q =
  match s_repairs t with
  | [] -> []
  | first :: rest ->
      let answers (r : Repair.t) = Rows.of_list (Cq.answers q r.repaired) in
      Rows.elements
        (List.fold_left
           (fun acc r -> Rows.inter acc (answers r))
           (answers first) rest)
