module Instance = Relational.Instance
module Value = Relational.Value
module Ic = Constraints.Ic
module Conflict_graph = Constraints.Conflict_graph

let key_blocks inst _schema ~rel ~key =
  let groups = Hashtbl.create 32 in
  List.iter
    (fun (_tid, row) ->
      let k = List.map (fun i -> row.(i)) key in
      (* NULL keys never conflict (SQL semantics), so they stay out of the
         blocks. *)
      if not (List.exists Value.is_null k) then
        Hashtbl.replace groups k
          (1 + Option.value ~default:0 (Hashtbl.find_opt groups k)))
    (Instance.tuples inst ~rel);
  Hashtbl.fold (fun _ n acc -> if n >= 2 then n :: acc else acc) groups []
  |> List.sort compare

let closed_form_keys inst schema ics =
  let keys =
    List.filter_map (function Ic.Key (rel, ps) -> Some (rel, ps) | _ -> None) ics
  in
  let rels = List.map fst keys in
  if
    List.length keys <> List.length ics
    || List.length (List.sort_uniq String.compare rels) <> List.length rels
  then None
  else
    Some
      (List.fold_left
         (fun acc (rel, key) ->
           List.fold_left ( * ) acc (key_blocks inst schema ~rel ~key))
         1 keys)

let via_hypergraph inst schema ics =
  let g = Conflict_graph.build_cached inst schema ics in
  List.length (Sat.Hitting_set.minimal (Conflict_graph.edges_as_int_lists g))

let s_repairs inst schema ics =
  match closed_form_keys inst schema ics with
  | Some n -> n
  | None ->
      if List.for_all Ic.is_denial_class ics then via_hypergraph inst schema ics
      else S_repair.count inst schema ics

let c_repairs inst schema ics =
  match closed_form_keys inst schema ics with
  | Some n ->
      (* Every key repair deletes exactly (block size - 1) per block, so all
         S-repairs share the minimum cardinality. *)
      n
  | None ->
      if List.for_all Ic.is_denial_class ics then
        let g = Conflict_graph.build_cached inst schema ics in
        List.length
          (Sat.Hitting_set.minimum_all (Conflict_graph.edges_as_int_lists g))
      else C_repair.count inst schema ics
