module Instance = Relational.Instance
module Schema = Relational.Schema
module Tid = Relational.Tid
module Fact = Relational.Fact
module Value = Relational.Value
module Ic = Constraints.Ic
module Violation = Constraints.Violation
module Conflict_graph = Constraints.Conflict_graph

exception Out_of_fuel

(* Search effort counters: candidates is branch nodes visited (one per
   database extended during branching search, or per hitting set in the
   hypergraph engine), conflicts is violations materialised, pruned is
   dead-end branches (a violation with no admissible fix). *)
let c_enumerations = Obs.Counter.make "repairs.enumerations"
let c_candidates = Obs.Counter.make "repairs.candidates"
let c_conflicts = Obs.Counter.make "repairs.conflicts"
let c_pruned = Obs.Counter.make "repairs.pruned"
let c_found = Obs.Counter.make "repairs.found"

let denial_only ics = List.for_all Ic.is_denial_class ics

(* Denial-class engine: minimal deletion sets = minimal hitting sets of the
   conflict hypergraph.  The hypergraph decomposes into connected
   components whose minimal hitting sets compose by cross-product union
   (components share no vertex, and minimality is preserved componentwise);
   components are solved with [Par.map], as is the materialisation of the
   repairs themselves. *)
let via_hypergraph inst schema ics =
  let g = Conflict_graph.build_cached inst schema ics in
  let edges = Conflict_graph.edges_as_int_lists g in
  Obs.Counter.add c_conflicts (List.length edges);
  let hitting_sets =
    if List.exists (( = ) []) edges then []
    else
      let per_component =
        Par.map Sat.Hitting_set.minimal (Sat.Hitting_set.components edges)
      in
      List.fold_left
        (fun acc hss ->
          List.concat_map
            (fun a ->
              Obs.Progress.tick ();
              List.map (fun h -> a @ h) hss)
            acc)
        [ [] ] per_component
  in
  Obs.Counter.add c_candidates (List.length hitting_sets);
  Par.map
    (fun hs ->
      Obs.Progress.tick ();
      let doomed = List.fold_left (fun s i -> Tid.Set.add (Tid.of_int i) s) Tid.Set.empty hs in
      let keep = Tid.Set.diff (Instance.tids inst) doomed in
      Repair.make ~original:inst (Instance.restrict inst keep))
    hitting_sets

type fix = Delete of Tid.t | Insert of Fact.t

let ind_missing_fact schema (i : Ic.ind) (row : Value.t array) =
  let sup_rel, sup_ps = i.Ic.sup and _, sub_ps = i.Ic.sub in
  let pairs = List.combine sub_ps sup_ps in
  let args =
    List.init (Schema.arity schema sup_rel) (fun q ->
        match List.find_opt (fun (_, q') -> q' = q) pairs with
        | Some (p, _) -> row.(p)
        | None -> Value.Null)
  in
  Fact.make sup_rel args

(* Fixes for the first violation found, or None when consistent.  Deleting
   a tuple inserted earlier in the search is never offered: the repair that
   avoids inserting it is reached through a sibling branch, and allowing
   the deletion would let insert/delete cycles run forever. *)
let first_violation ~actions ~original_facts inst schema ics =
  let deletable tid =
    Fact.Set.mem (Instance.fact_of inst tid) original_facts
  in
  let rec go = function
    | [] -> None
    | ic :: rest -> (
        match ic with
        | Ic.Ind i -> (
            match Violation.of_ind inst i with
            | [] -> go rest
            | tid :: _ ->
                let row = (Instance.fact_of inst tid).Fact.row in
                let deletes = if deletable tid then [ Delete tid ] else [] in
                let inserts =
                  match actions with
                  | `Delete_only -> []
                  | `Delete_insert -> [ Insert (ind_missing_fact schema i row) ]
                in
                Some (deletes @ inserts))
        | _ -> (
            match Violation.of_ic inst schema ic with
            | [] -> go rest
            | w :: _ ->
                Some
                  (List.filter_map
                     (fun tid ->
                       if deletable tid then Some (Delete tid) else None)
                     (Tid.Set.elements w.Violation.tids))))
  in
  go ics

let apply_fix inst = function
  | Delete tid -> Instance.delete inst tid
  | Insert f -> Instance.add inst f

let branching_search ~actions ~fuel inst schema ics =
  let budget = ref fuel in
  let seen = Hashtbl.create 64 in
  let results = ref [] in
  let original_facts = Instance.facts inst in
  let rec go db =
    decr budget;
    if !budget < 0 then raise Out_of_fuel;
    Obs.Counter.incr c_candidates;
    Obs.Progress.tick ();
    match first_violation ~actions ~original_facts db schema ics with
    | None ->
        let key = Fact.Set.elements (Instance.facts db) in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          results := db :: !results
        end
    | Some [] ->
        (* dead end: violation with no admissible fix *)
        Obs.Counter.incr c_pruned
    | Some fixes ->
        Obs.Counter.incr c_conflicts;
        List.iter (fun fix -> go (apply_fix db fix)) fixes
  in
  go inst;
  List.map (fun db -> Repair.make ~original:inst db) !results
  |> Repair.minimal_under_inclusion

let enumerate ?(actions = `Delete_insert) ?(fuel = 100_000) inst schema ics =
  let sp = Obs.Trace.start "repairs.enumerate" in
  Obs.Counter.incr c_enumerations;
  Obs.Progress.phase "repairs.enumerate";
  let strategy = if denial_only ics then "hypergraph" else "branching" in
  match
    if denial_only ics then via_hypergraph inst schema ics
    else branching_search ~actions ~fuel inst schema ics
  with
  | repairs ->
      Obs.Counter.add c_found (List.length repairs);
      if Obs.Trace.is_enabled () then begin
        Obs.Trace.attr "strategy" strategy;
        Obs.Trace.attr_int "repairs" (List.length repairs)
      end;
      Obs.Trace.finish sp;
      List.sort Repair.compare_by_delta repairs
  | exception e ->
      Obs.Trace.finish sp;
      raise e

(* Greedy maximal independent set for denial-class constraints: start from
   the conflict-free tuples and add back conflicting ones while the result
   stays consistent. *)
let one_greedy inst schema ics =
  let g = Conflict_graph.build_cached inst schema ics in
  let conflicting = Conflict_graph.conflicting_tids g in
  let consistent db = Violation.is_consistent db schema ics in
  let base =
    Instance.restrict inst (Tid.Set.diff (Instance.tids inst) conflicting)
  in
  if not (consistent base) then None
  else
    let repaired =
      Tid.Set.fold
        (fun tid db ->
          let db' = Instance.add db (Instance.fact_of inst tid) in
          if consistent db' then db' else db)
        conflicting base
    in
    Some (Repair.make ~original:inst repaired)

let one ?(actions = `Delete_insert) ?fuel inst schema ics =
  if denial_only ics then one_greedy inst schema ics
  else
    match enumerate ~actions ?fuel inst schema ics with
    | [] -> None
    | r :: _ -> Some r

let count ?actions ?fuel inst schema ics =
  List.length (enumerate ?actions ?fuel inst schema ics)
