module Instance = Relational.Instance
module Tid = Relational.Tid
module Value = Relational.Value
module Ic = Constraints.Ic
module Violation = Constraints.Violation

type t = { changes : Tid.Cell.Set.t; repaired : Instance.t }

let var_occurrences (d : Ic.denial) =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (a : Logic.Atom.t) ->
      List.iter
        (function
          | Logic.Term.Var v ->
              Hashtbl.replace tbl v (1 + Option.value ~default:0 (Hashtbl.find_opt tbl v))
          | Logic.Term.Const _ -> ())
        a.args)
    d.atoms;
  tbl

let breakable_cells (w : Violation.witness) (d : Ic.denial) =
  let occ = var_occurrences d in
  let comp_vars = List.concat_map Logic.Cmp.vars d.comps in
  List.fold_left
    (fun acc (tid, (a : Logic.Atom.t)) ->
      List.fold_left
        (fun (acc, i) term ->
          let breaks =
            match term with
            | Logic.Term.Const _ -> true
            | Logic.Term.Var v ->
                Option.value ~default:0 (Hashtbl.find_opt occ v) >= 2
                || List.mem v comp_vars
          in
          let acc =
            if breaks then Tid.Cell.Set.add (Tid.Cell.make tid (i + 1)) acc
            else acc
          in
          (acc, i + 1))
        (acc, 0) a.args
      |> fst)
    Tid.Cell.Set.empty w.matched

let cell_edges inst schema ics =
  List.concat_map
    (fun ic ->
      match Ic.to_denials schema ic with
      | None ->
          invalid_arg
            (Printf.sprintf
               "Attr_repair: %s is not a denial-class constraint" (Ic.name ic))
      | Some denials ->
          List.concat_map
            (fun d ->
              List.map
                (fun w -> breakable_cells w d)
                (Violation.of_denial inst d))
            denials)
    ics

let apply_changes inst cells =
  List.fold_left (fun db cell -> Instance.update_cell db cell Value.Null) inst cells

let with_encoding inst schema ics solve =
  let edges = cell_edges inst schema ics in
  let index = Hashtbl.create 64 and back = Hashtbl.create 64 and next = ref 0 in
  let encode cell =
    match Hashtbl.find_opt index cell with
    | Some i -> i
    | None ->
        incr next;
        Hashtbl.add index cell !next;
        Hashtbl.add back !next cell;
        !next
  in
  let int_edges =
    List.map (fun e -> List.map encode (Tid.Cell.Set.elements e)) edges
  in
  let decode hs =
    let cells = List.map (Hashtbl.find back) hs in
    {
      changes = Tid.Cell.Set.of_list cells;
      repaired = apply_changes inst cells;
    }
  in
  solve int_edges decode

let enumerate inst schema ics =
  with_encoding inst schema ics (fun int_edges decode ->
      List.map decode (Sat.Hitting_set.minimal int_edges))

let minimum inst schema ics =
  with_encoding inst schema ics (fun int_edges decode ->
      Option.map decode (Sat.Hitting_set.minimum int_edges))

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Tid.Cell.pp)
    (Tid.Cell.Set.elements t.changes)
