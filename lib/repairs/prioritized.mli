(** Prioritized repairs (paper, Section 4; Staworko–Chomicki–Marcinkowski
    [103], with the complexity picture of Fagin–Kimelfeld–Kolaitis [57]).

    A priority is an acyclic relation ≻ on conflicting tuples ("keep this
    one rather than that one").  Following [103]:
    - repair Y is a {e global improvement} of repair X when Y ≠ X and every
      tuple kept by X but not Y is dominated by some tuple kept by Y but
      not X;
    - Y is a {e Pareto improvement} when a single tuple of Y∖X dominates
      all of X∖Y;
    - globally / Pareto-optimal repairs are the S-repairs admitting no such
      improvement, and a {e completion-optimal} repair is one obtained by
      the greedy procedure under some total extension of ≻
      (global ⊆ Pareto ⊆ completion holds by definition).

    Priorities are only consulted between conflicting tuples. *)

type priority = Relational.Tid.t -> Relational.Tid.t -> bool
(** [p t t'] means t ≻ t' (t is preferred). Must be irreflexive and acyclic
    on conflicting tuples; this is not checked. *)

val is_global_improvement :
  priority -> original:Relational.Instance.t -> Repair.t -> Repair.t -> bool
(** [is_global_improvement p ~original x y]: is [y] a global improvement of
    [x]? *)

val is_pareto_improvement :
  priority -> original:Relational.Instance.t -> Repair.t -> Repair.t -> bool

val globally_optimal :
  priority ->
  Relational.Instance.t ->
  Relational.Schema.t ->
  Constraints.Ic.t list ->
  Repair.t list

val pareto_optimal :
  priority ->
  Relational.Instance.t ->
  Relational.Schema.t ->
  Constraints.Ic.t list ->
  Repair.t list

val greedy_completion :
  order:Relational.Tid.t list ->
  Relational.Instance.t ->
  Relational.Schema.t ->
  Constraints.Ic.t list ->
  Repair.t
(** One completion-optimal repair: scan the tuples in [order] (a total
    extension of the priority, most-preferred first) and keep each tuple
    whenever it is consistent with those already kept.  Denial-class
    constraints only. *)

val consistent_answers :
  semantics:[ `Global | `Pareto ] ->
  priority ->
  Relational.Instance.t ->
  Relational.Schema.t ->
  Constraints.Ic.t list ->
  Logic.Cq.t ->
  Relational.Value.t list list
(** Certain answers over the optimal repairs only. *)
