(** Database repairs as values: the repaired instance together with its
    distance to the original (paper, Example 3.1).

    The symmetric difference [D Δ D'] decomposes into deleted facts
    ([D \ D']) and inserted facts ([D' \ D]); S-repairs minimize it under
    set inclusion and C-repairs minimize its cardinality. *)

type actions =
  [ `Delete_only  (** Only tuple deletions, as in Chomicki–Marcinkowski. *)
  | `Delete_insert
    (** Deletions plus insertions; an IND with existential head positions
        inserts NULL there (the paper's null-based tuple-level repairs,
        Section 4.2). *) ]

type t = {
  original : Relational.Instance.t;
  repaired : Relational.Instance.t;
  deleted : Relational.Fact.Set.t;
  inserted : Relational.Fact.Set.t;
}

val make : original:Relational.Instance.t -> Relational.Instance.t -> t
val delta : t -> Relational.Fact.Set.t
val cost : t -> int
(** [|D Δ D'|]. *)

val is_deletion_only : t -> bool
val equal : t -> t -> bool
val compare_by_delta : t -> t -> int
(** Order repairs by their delta fact sets, for stable output. *)

val minimal_under_inclusion : t list -> t list
(** Keep the repairs whose delta is not a strict superset of another's. *)

val pp : Format.formatter -> t -> unit
