(** Incremental conflict maintenance — repairs and CQA under updates
    (paper, Section 4.1: Lopatenko–Bertossi [87] "just started to scratch
    the surface in this direction").

    Keeps the conflict hypergraph of a denial-class constraint set
    synchronized with tuple insertions and deletions: an insertion only
    searches for violations involving the new tuple, a deletion only drops
    the edges containing it.  Repairs and consistent answers are then
    recomputed from the maintained graph without rescanning the database. *)

type t

val create :
  Relational.Instance.t -> Relational.Schema.t -> Constraints.Ic.t list -> t
(** Raises [Invalid_argument] on non-denial-class constraints. *)

val instance : t -> Relational.Instance.t
val graph : t -> Constraints.Conflict_graph.t
val is_consistent : t -> bool

val insert : t -> Relational.Fact.t -> t * Relational.Tid.t
val delete : t -> Relational.Tid.t -> t

val s_repairs : t -> Repair.t list
(** From the maintained hypergraph (no revalidation pass). *)

val consistent_answers : t -> Logic.Cq.t -> Relational.Value.t list list
