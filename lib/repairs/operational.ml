module Instance = Relational.Instance
module Tid = Relational.Tid
module Value = Relational.Value
module Violation = Constraints.Violation
module Ic = Constraints.Ic

let check_denial_class ics =
  List.iter
    (fun ic ->
      if not (Ic.is_denial_class ic) then
        invalid_arg "Operational: denial-class constraints only")
    ics

let sample_with rng inst schema ics =
  (* Delete phase: resolve a random violation by deleting one of its tuples
     uniformly, until consistent. *)
  let rec resolve db =
    match Violation.all db schema ics with
    | [] -> db
    | witnesses ->
        let w = List.nth witnesses (Random.State.int rng (List.length witnesses)) in
        let tids = Tid.Set.elements w.Violation.tids in
        let victim = List.nth tids (Random.State.int rng (List.length tids)) in
        resolve (Instance.delete db victim)
  in
  let consistent = resolve inst in
  (* Maximality phase: deleted tuples that no longer conflict are put back
     (in random order), so the run ends in an S-repair, not merely a
     consistent sub-instance. *)
  let deleted =
    Tid.Set.elements (Tid.Set.diff (Instance.tids inst) (Instance.tids consistent))
  in
  let shuffled =
    deleted
    |> List.map (fun t -> (Random.State.bits rng, t))
    |> List.sort compare |> List.map snd
  in
  let repaired =
    List.fold_left
      (fun db tid ->
        let db' = Instance.add db (Instance.fact_of inst tid) in
        if Violation.is_consistent db' schema ics then db' else db)
      consistent shuffled
  in
  Repair.make ~original:inst repaired

let sample_repair ?(seed = 0) inst schema ics =
  check_denial_class ics;
  sample_with (Random.State.make [| seed |]) inst schema ics

module Rows = Map.Make (struct
  type t = Value.t list

  let compare = List.compare Value.compare
end)

let answer_probability ?(seed = 0) ?(samples = 200) inst schema ics q =
  check_denial_class ics;
  let rng = Random.State.make [| seed |] in
  let counts = ref Rows.empty in
  for _ = 1 to samples do
    let r = sample_with rng inst schema ics in
    List.iter
      (fun row ->
        counts :=
          Rows.update row
            (fun c -> Some (1 + Option.value ~default:0 c))
            !counts)
      (Logic.Cq.answers q r.Repair.repaired)
  done;
  Rows.fold
    (fun row c acc -> (row, float_of_int c /. float_of_int samples) :: acc)
    !counts []
  |> List.sort (fun (r1, p1) (r2, p2) ->
         match Float.compare p2 p1 with
         | 0 -> List.compare Value.compare r1 r2
         | c -> c)

let probable_answers ?seed ?samples ?(threshold = 0.5) inst schema ics q =
  answer_probability ?seed ?samples inst schema ics q
  |> List.filter_map (fun (row, p) -> if p > threshold then Some row else None)
