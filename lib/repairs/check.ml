module Instance = Relational.Instance
module Fact = Relational.Fact
module Violation = Constraints.Violation

let is_consistent inst schema ics = Violation.is_consistent inst schema ics

(* Toggle the membership of each fact in [delta_subset]. *)
let apply_delta original subset =
  Fact.Set.fold
    (fun f db ->
      if Instance.mem_fact db f then Instance.delete_fact db f
      else Instance.add db f)
    subset original

let rec proper_subsets = function
  | [] -> [ [] ]
  | x :: rest ->
      let subs = proper_subsets rest in
      subs @ List.map (fun s -> x :: s) subs

let is_s_repair ?(max_delta = 20) ~original schema ics candidate =
  is_consistent candidate schema ics
  &&
  let delta = Instance.symmetric_difference original candidate in
  let n = Fact.Set.cardinal delta in
  if n = 0 then true
  else if n > max_delta then
    invalid_arg
      (Printf.sprintf "Check.is_s_repair: |delta| = %d exceeds max_delta" n)
  else
    let elements = Fact.Set.elements delta in
    List.for_all
      (fun subset ->
        List.length subset = n
        || not (is_consistent (apply_delta original (Fact.Set.of_list subset)) schema ics))
      (proper_subsets elements)

let is_c_repair ?actions ~original schema ics candidate =
  is_consistent candidate schema ics
  &&
  let delta = Instance.symmetric_difference original candidate in
  match C_repair.minimum_cost ?actions original schema ics with
  | None -> false
  | Some k -> Fact.Set.cardinal delta = k
