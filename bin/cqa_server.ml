(* cqa-serve — the resident CQA service: a single-process select loop
   speaking the line protocol of Server.Protocol over a Unix-domain or
   TCP socket.  See `cqa client` for an interactive front end, and
   docs/TUTORIAL.md ("Serving CQA") for the protocol. *)

open Cmdliner

let run unix_path port cache_capacity max_requests metrics_dump trace_dir jobs
    =
  Par.set_default_jobs jobs;
  let fd, where =
    match
      match port with
      | Some p ->
          let fd, actual = Server.Loop.listen_tcp ~port:p () in
          (fd, Printf.sprintf "tcp://127.0.0.1:%d" actual)
      | None -> (Server.Loop.listen_unix unix_path, "unix://" ^ unix_path)
    with
    | listening -> listening
    | exception Failure msg ->
        prerr_endline ("cqa_server: " ^ msg);
        exit 1
    | exception Unix.Unix_error (e, _, arg) ->
        Printf.eprintf "cqa_server: cannot listen on %s: %s\n" arg
          (Unix.error_message e);
        exit 1
  in
  (* --trace-dir: turn tracing on for the whole process, stream every
     request's spans to DIR/spans.jsonl as they are drained, and keep a
     bounded copy to write DIR/trace.json (Chrome trace_event, loadable
     in Perfetto) at shutdown. *)
  let kept = ref [] and nkept = ref 0 in
  let keep_limit = 100_000 in
  let on_trace =
    match trace_dir with
    | None -> None
    | Some dir ->
        (try Unix.mkdir dir 0o755
         with Unix.Unix_error ((EEXIST | EISDIR), _, _) -> ());
        Obs.Trace.set_enabled true;
        let path = Filename.concat dir "spans.jsonl" in
        Some
          (fun spans ->
            let oc =
              open_out_gen [ Open_append; Open_creat ] 0o644 path
            in
            List.iter
              (fun line -> output_string oc (line ^ "\n"))
              (Obs.Export.jsonl spans);
            close_out oc;
            if !nkept < keep_limit then begin
              kept := List.rev_append spans !kept;
              nkept := !nkept + List.length spans
            end)
  in
  let t = Server.Loop.create ~cache_capacity ?on_trace fd in
  let stop_and_note _ =
    prerr_endline "shutting down";
    Server.Loop.stop t
  in
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop_and_note);
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_and_note)
   with Invalid_argument _ -> ());
  Printf.printf "cqa-serve listening on %s (cache capacity %d)\n%!" where
    cache_capacity;
  Server.Loop.run ?max_requests t;
  (match trace_dir with
  | Some dir when !kept <> [] ->
      let path = Filename.concat dir "trace.json" in
      let oc = open_out path in
      output_string oc (Obs.Export.chrome (List.rev !kept));
      output_char oc '\n';
      close_out oc;
      Printf.eprintf "wrote %d spans to %s\n%!" !nkept path
  | _ -> ());
  if metrics_dump then
    List.iter print_endline
      (Server.Metrics.render (Server.Handler.metrics (Server.Loop.handler t)))

let unix_arg =
  Arg.(
    value
    & opt string "/tmp/cqa-serve.sock"
    & info [ "unix" ] ~docv:"PATH" ~doc:"Unix-domain socket path to listen on.")

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT"
        ~doc:"Listen on TCP 127.0.0.1:$(docv) instead of a Unix socket (0 \
              picks a free port).")

let cache_arg =
  Arg.(
    value
    & opt int 512
    & info [ "cache-capacity" ] ~docv:"N"
        ~doc:"Entries in the certain-answer memoization cache.")

let max_requests_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-requests" ] ~docv:"N"
        ~doc:"Exit after serving $(docv) requests (for scripted runs).")

let metrics_dump_arg =
  Arg.(
    value & flag
    & info [ "metrics-dump" ]
        ~doc:"Print the metrics registry to stdout on shutdown.")

let trace_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-dir" ] ~docv:"DIR"
        ~doc:
          "Enable tracing and write spans to $(docv)/spans.jsonl as they \
           complete, plus a Chrome trace_event file $(docv)/trace.json \
           (open in Perfetto) on shutdown.")

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Parallelism for repair enumeration and ASP candidate checking \
           while serving (1 = sequential; --trace-dir forces sequential \
           execution).")

let main =
  Cmd.v
    (Cmd.info "cqa_server" ~version:"1.0.0"
       ~doc:
         "Persistent CQA service: sessions, memoized certain answers, \
          request metrics.")
    Term.(
      const run $ unix_arg $ port_arg $ cache_arg $ max_requests_arg
      $ metrics_dump_arg $ trace_dir_arg $ jobs_arg)

let () = exit (Cmd.eval main)
