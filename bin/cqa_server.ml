(* cqa-serve — the resident CQA service: a single-process select loop
   speaking the line protocol of Server.Protocol over a Unix-domain or
   TCP socket.  See `cqa client` for an interactive front end, and
   docs/TUTORIAL.md ("Serving CQA") for the protocol. *)

open Cmdliner

let version = "1.0.0"

let run unix_path port cache_capacity max_requests metrics_dump trace_dir jobs
    metrics_port slow_ms events_path workload_capacity workload_dump
    tail_sample_ms tail_sample_every tail_buffer default_timeout_ms =
  Par.set_default_jobs jobs;
  let fd, where =
    match
      match port with
      | Some p ->
          let fd, actual = Server.Loop.listen_tcp ~port:p () in
          (fd, Printf.sprintf "tcp://127.0.0.1:%d" actual)
      | None -> (Server.Loop.listen_unix unix_path, "unix://" ^ unix_path)
    with
    | listening -> listening
    | exception Failure msg ->
        prerr_endline ("cqa_server: " ^ msg);
        exit 1
    | exception Unix.Unix_error (e, _, arg) ->
        Printf.eprintf "cqa_server: cannot listen on %s: %s\n" arg
          (Unix.error_message e);
        exit 1
  in
  let metrics_fd, metrics_where =
    match metrics_port with
    | None -> (None, None)
    | Some p -> (
        match Server.Loop.listen_tcp ~port:p () with
        | mfd, actual ->
            (Some mfd, Some (Printf.sprintf "http://127.0.0.1:%d/metrics" actual))
        | exception Unix.Unix_error (e, _, arg) ->
            Printf.eprintf "cqa_server: cannot listen on %s: %s\n" arg
              (Unix.error_message e);
            exit 1)
  in
  (* The event log: --events PATH, or stderr when --slow-ms is set
     without a destination (a slow-query log you ask for should go
     somewhere visible, not nowhere). *)
  let events =
    match (events_path, slow_ms) with
    | Some path, _ -> (
        match Obs.Events.open_file path with
        | sink -> Some sink
        | exception Sys_error msg ->
            Printf.eprintf "cqa_server: cannot open event log: %s\n" msg;
            exit 1)
    | None, Some _ -> Some (Obs.Events.stderr_sink ())
    | None, None -> None
  in
  (* --trace-dir: turn tracing on for the whole process, stream every
     request's spans to DIR/spans.jsonl as they are drained, and keep a
     bounded copy to write DIR/trace.json (Chrome trace_event, loadable
     in Perfetto) at shutdown. *)
  let kept = ref [] and nkept = ref 0 in
  let keep_limit = 100_000 in
  let on_trace =
    match trace_dir with
    | None -> None
    | Some dir ->
        (try Unix.mkdir dir 0o755
         with Unix.Unix_error ((EEXIST | EISDIR), _, _) -> ());
        Obs.Trace.set_enabled true;
        let path = Filename.concat dir "spans.jsonl" in
        Some
          (fun spans ->
            let oc =
              open_out_gen [ Open_append; Open_creat ] 0o644 path
            in
            List.iter
              (fun line -> output_string oc (line ^ "\n"))
              (Obs.Export.jsonl spans);
            close_out oc;
            if !nkept < keep_limit then begin
              kept := List.rev_append spans !kept;
              nkept := !nkept + List.length spans
            end)
  in
  (* Workload introspection: --workload 0 turns the statements store
     off; anything else bounds it.  The tail sampler arms when either
     retention rule is requested. *)
  let stats =
    if workload_capacity = 0 then None
    else Some (Obs.Stats.create ~capacity:workload_capacity ())
  in
  let sampler =
    if tail_sample_ms = None && tail_sample_every = 0 then None
    else
      Some
        (Obs.Sampler.create ~capacity:tail_buffer
           ?threshold_s:(Option.map (fun ms -> ms /. 1e3) tail_sample_ms)
           ~sample_every:tail_sample_every ())
  in
  let t =
    Server.Loop.create ~cache_capacity ?on_trace ?events ?slow_ms ?stats
      ?sampler ?default_timeout_ms ~version ?metrics_fd fd
  in
  (* Everything that must survive a shutdown — the Chrome trace, the
     metrics dump, the event log's final lines — goes through one
     idempotent flush, called both on the normal exit path and from
     at_exit so a signal arriving mid-write still leaves the files
     whole. *)
  let flushed = ref false in
  let flush_all () =
    if not !flushed then begin
      flushed := true;
      (* The in-flight table first: when a signal interrupts a wedged
         request, the flight recorder is the record of what it was doing.
         The table is read lock-free, so this is safe from a signal
         handler even if the interrupted code was mid-registration. *)
      (match Obs.Progress.inflight () with
      | [] -> ()
      | ctxs ->
          Printf.eprintf "in-flight at shutdown (%d):\n" (List.length ctxs);
          List.iter
            (fun c ->
              Printf.eprintf "  %s\n" (Obs.Progress.describe c);
              List.iter
                (fun l -> Printf.eprintf "    %s\n" l)
                (Obs.Progress.history_lines c))
            ctxs;
          flush stderr);
      (match trace_dir with
      | Some dir when !kept <> [] ->
          let path = Filename.concat dir "trace.json" in
          let oc = open_out path in
          output_string oc (Obs.Export.chrome (List.rev !kept));
          output_char oc '\n';
          close_out oc;
          Printf.eprintf "wrote %d spans to %s\n%!" !nkept path
      | _ -> ());
      if metrics_dump then begin
        Server.Handler.sample_gauges (Server.Loop.handler t);
        List.iter print_endline
          (Server.Metrics.render
             (Server.Handler.metrics (Server.Loop.handler t)))
      end;
      (* The workload dump: one JSON object combining the statements
         store and the tail-sampling summary — the input of
         `cqa report`. *)
      (match (workload_dump, stats) with
      | Some path, Some stats -> (
          let sampler_json =
            match sampler with
            | Some s -> Obs.Sampler.summary_json s
            | None -> "null"
          in
          let doc =
            Printf.sprintf "{\"workload\":%s,\"sampler\":%s}"
              (Obs.Stats.to_json stats) sampler_json
          in
          try
            let oc = open_out path in
            output_string oc doc;
            output_char oc '\n';
            close_out oc;
            Printf.eprintf "wrote workload stats to %s\n%!" path
          with Sys_error msg ->
            Printf.eprintf "cqa_server: cannot write workload dump: %s\n%!" msg)
      | _ -> ());
      Option.iter
        (fun sink ->
          (* A wall-clock anchor next to the final lines, so this log
             can be correlated with other processes' logs. *)
          Obs.Events.anchor ~label:"shutdown" sink;
          (* Retained tail traces ride the event log: one tail_trace
             record per kept request, joinable on req. *)
          (match sampler with
          | None -> ()
          | Some s ->
              List.iter
                (fun (r : Obs.Sampler.record) ->
                  let spans_json =
                    "["
                    ^ String.concat ","
                        (List.map Obs.Export.json_string
                           (Obs.Export.tree r.spans))
                    ^ "]"
                  in
                  Obs.Events.emit sink ~req:r.rid
                    ~fields:
                      [
                        ("command", Obs.Events.Str r.command);
                        ("wall_us", Obs.Events.Float (r.wall_s *. 1e6));
                        ( "reason",
                          Obs.Events.Str (Obs.Sampler.reason_label r.reason) );
                        ("spans", Obs.Events.Raw spans_json);
                      ]
                    "tail_trace")
                (Obs.Sampler.retained s));
          Obs.Events.emit sink "shutdown";
          Obs.Events.close sink)
        events
    end
  in
  at_exit flush_all;
  let stopping = ref false in
  let stop_and_note _ =
    if !stopping then begin
      (* Second signal: the loop is wedged or the user is impatient —
         flush what we can and leave now. *)
      flush_all ();
      exit 130
    end;
    stopping := true;
    prerr_endline "shutting down";
    Server.Loop.stop t
  in
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop_and_note);
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_and_note)
   with Invalid_argument _ -> ());
  Printf.printf "cqa-serve listening on %s (cache capacity %d)\n%!" where
    cache_capacity;
  Option.iter (Printf.printf "metrics exposed at %s\n%!") metrics_where;
  Option.iter
    (fun sink ->
      Obs.Events.emit sink "startup";
      Obs.Events.anchor ~label:"startup" sink)
    events;
  Server.Loop.run ?max_requests t;
  flush_all ()

let unix_arg =
  Arg.(
    value
    & opt string "/tmp/cqa-serve.sock"
    & info [ "unix" ] ~docv:"PATH" ~doc:"Unix-domain socket path to listen on.")

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT"
        ~doc:"Listen on TCP 127.0.0.1:$(docv) instead of a Unix socket (0 \
              picks a free port).")

let cache_arg =
  Arg.(
    value
    & opt int 512
    & info [ "cache-capacity" ] ~docv:"N"
        ~doc:"Entries in the certain-answer memoization cache.")

let max_requests_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-requests" ] ~docv:"N"
        ~doc:"Exit after serving $(docv) requests (for scripted runs).")

let metrics_dump_arg =
  Arg.(
    value & flag
    & info [ "metrics-dump" ]
        ~doc:"Print the metrics registry to stdout on shutdown.")

let trace_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-dir" ] ~docv:"DIR"
        ~doc:
          "Enable tracing and write spans to $(docv)/spans.jsonl as they \
           complete, plus a Chrome trace_event file $(docv)/trace.json \
           (open in Perfetto) on shutdown.")

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Parallelism for repair enumeration and ASP candidate checking \
           while serving (1 = sequential; --trace-dir forces sequential \
           execution).")

let metrics_port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "metrics-port" ] ~docv:"PORT"
        ~doc:
          "Serve Prometheus text exposition over HTTP on \
           127.0.0.1:$(docv)/metrics (0 picks a free port).")

let slow_ms_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "slow-ms" ] ~docv:"MS"
        ~doc:
          "Slow-query log: any request over $(docv) milliseconds emits a \
           slow_query event carrying its span tree and counter deltas (to \
           --events, or stderr if unset).  Forces sequential execution, \
           like --trace-dir.")

let events_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "events" ] ~docv:"PATH"
        ~doc:
          "Append structured JSONL events (one request record per request, \
           plus slow_query/startup/shutdown) to $(docv).")

let workload_arg =
  Arg.(
    value
    & opt int 256
    & info [ "workload" ] ~docv:"N"
        ~doc:
          "Workload introspection: aggregate per-query-fingerprint call \
           counts, latency histograms, cache traffic, plan-branch cost \
           centers and solver-counter deltas in a statements store bounded \
           to $(docv) entries (deterministic eviction).  Read back with \
           the WORKLOAD command; 0 disables.  Forces sequential \
           execution, like --slow-ms.")

let workload_dump_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "workload-dump" ] ~docv:"PATH"
        ~doc:
          "Write the workload statements store and tail-sampling summary \
           as one JSON object to $(docv) on shutdown (the input of `cqa \
           report`).")

let tail_sample_ms_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "tail-sample-ms" ] ~docv:"MS"
        ~doc:
          "Tail-sampled tracing: retain the full span tree of any request \
           over $(docv) milliseconds (errors are always retained) in a \
           bounded ring, flushed as tail_trace events on shutdown.")

let tail_sample_every_arg =
  Arg.(
    value
    & opt int 0
    & info [ "tail-sample-every" ] ~docv:"K"
        ~doc:
          "Also retain every $(docv)-th request's span tree as a baseline \
           of normal traffic (0 disables).")

let tail_buffer_arg =
  Arg.(
    value
    & opt int 64
    & info [ "tail-buffer" ] ~docv:"N"
        ~doc:
          "Capacity of the tail-sampling ring buffer; a new retention \
           overwrites the oldest.")

let default_timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "default-timeout-ms" ] ~docv:"MS"
        ~doc:
          "Deadline applied to every session-touching request that does \
           not carry its own timeout= option: past the budget the request \
           is cancelled cooperatively at the next solver heartbeat and \
           answered with a structured ERR deadline carrying its last \
           progress snapshot.")

let main =
  Cmd.v
    (Cmd.info "cqa_server" ~version
       ~doc:
         "Persistent CQA service: sessions, memoized certain answers, \
          request metrics.")
    Term.(
      const run $ unix_arg $ port_arg $ cache_arg $ max_requests_arg
      $ metrics_dump_arg $ trace_dir_arg $ jobs_arg $ metrics_port_arg
      $ slow_ms_arg $ events_arg $ workload_arg $ workload_dump_arg
      $ tail_sample_ms_arg $ tail_sample_every_arg $ tail_buffer_arg
      $ default_timeout_arg)

let () = exit (Cmd.eval main)
