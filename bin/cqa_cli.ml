(* cqa — command-line front end: check consistency, enumerate repairs,
   answer queries consistently, measure inconsistency, explain answers.

   Input files use the line format of Cqa.Parse (see `cqa --help`). *)

let load path =
  try Cqa.Parse.document_of_file path with
  | Cqa.Parse.Error (line, msg) ->
      Printf.eprintf "%s:%d: %s\n" path line msg;
      exit 2
  | Sys_error msg ->
      prerr_endline msg;
      exit 2

let engine (doc : Cqa.Parse.document) =
  Cqa.Engine.create ~schema:doc.schema ~ics:doc.ics doc.instance

let pp_rows rows =
  List.iter
    (fun row ->
      (* A Boolean query's positive answer is the empty tuple. *)
      if row = [] then print_endline "true"
      else
        print_endline
          (String.concat ", " (List.map Relational.Value.to_string row)))
    rows

let query_of doc name =
  match Cqa.Parse.find_query doc name with
  | q -> q
  | exception Not_found ->
      Printf.eprintf "no query named %s in the input (declare `query %s(...) :- ...`)\n"
        name name;
      exit 2

open Cmdliner

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Input document.")

(* --trace FILE: run the action with tracing into a private sink and
   write the collected spans as a Chrome trace_event file. *)
let with_trace trace f =
  match trace with
  | None -> f ()
  | Some path ->
      let result, spans = Obs.Trace.collect f in
      Out_channel.with_open_text path (fun oc ->
          output_string oc (Obs.Export.chrome spans);
          output_char oc '\n');
      Printf.eprintf "trace: %d span(s) written to %s\n%!"
        (List.length spans) path;
      result

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event file of the run to $(docv) (open in \
           chrome://tracing or Perfetto).")

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Parallelism for repair enumeration and ASP candidate checking (1 \
           = sequential; tracing forces sequential execution).")

let with_jobs jobs f =
  Par.set_default_jobs jobs;
  f ()

let check_cmd =
  let run file trace jobs =
    let doc = load file in
    let witnesses =
      with_jobs jobs (fun () ->
          with_trace trace (fun () ->
              Constraints.Violation.all doc.instance doc.schema doc.ics))
    in
    if witnesses = [] then print_endline "consistent"
    else begin
      Printf.printf "inconsistent: %d violation(s)\n" (List.length witnesses);
      List.iter
        (fun w ->
          Format.printf "  %a@." Constraints.Violation.pp_witness w)
        witnesses;
      exit 1
    end
  in
  Cmd.v (Cmd.info "check" ~doc:"Check the instance against its constraints.")
    Term.(const run $ file_arg $ trace_arg $ jobs_arg)

let semantics_arg =
  Arg.(
    value
    & opt (enum [ ("s", `S); ("c", `C) ]) `S
    & info [ "semantics" ] ~docv:"S" ~doc:"Repair semantics: s (set-minimal) or c (cardinality).")

let repairs_cmd =
  let run file semantics trace jobs =
    let doc = load file in
    let repairs =
      with_jobs jobs (fun () ->
          with_trace trace (fun () ->
              match semantics with
              | `S -> Repairs.S_repair.enumerate doc.instance doc.schema doc.ics
              | `C -> Repairs.C_repair.enumerate doc.instance doc.schema doc.ics))
    in
    Printf.printf "%d repair(s)\n" (List.length repairs);
    List.iteri
      (fun i r ->
        Format.printf "repair %d:@.  %a@." (i + 1) Repairs.Repair.pp r)
      repairs
  in
  Cmd.v (Cmd.info "repairs" ~doc:"Enumerate the repairs of the instance.")
    Term.(const run $ file_arg $ semantics_arg $ trace_arg $ jobs_arg)

let method_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("auto", `Auto);
             ("enum", `Repair_enumeration);
             ("rewriting", `Residue_rewriting);
             ("key-rewriting", `Key_rewriting);
             ("datalog", `Datalog);
             ("asp", `Asp);
             ("sat", `Sat);
           ])
        `Auto
    & info [ "method" ] ~docv:"M"
        ~doc:
          "CQA method: auto, enum, rewriting, key-rewriting, datalog \
           (attack-graph Datalog rewriting; acyclic attack graphs under \
           primary keys), asp or sat (CAvSAT-style SAT compilation; \
           denial-class constraints).")

let query_arg =
  Arg.(required & opt (some string) None & info [ "query"; "q" ] ~docv:"NAME" ~doc:"Query name.")

let answers_cmd =
  let run file qname method_ trace jobs =
    let doc = load file in
    let u =
      match Cqa.Parse.find_ucq doc qname with
      | u -> u
      | exception Not_found ->
          Printf.eprintf
            "no query named %s in the input (declare `query %s(...) :- ...`)\n"
            qname qname;
          exit 2
    in
    let rows =
      with_jobs jobs @@ fun () ->
      with_trace trace (fun () ->
          match u.Logic.Ucq.disjuncts with
          | [ q ] -> Cqa.Engine.consistent_answers ~method_ (engine doc) q
          | _ ->
              (* A union of queries: enumeration or ASP. *)
              let m =
                match method_ with `Asp -> `Asp | _ -> `Repair_enumeration
              in
              Cqa.Engine.consistent_answers_ucq ~method_:m (engine doc) u)
    in
    pp_rows rows
  in
  Cmd.v
    (Cmd.info "answers"
       ~doc:
         "Consistent answers to a named query (several query lines with one \
          name form a union).")
    Term.(const run $ file_arg $ query_arg $ method_arg $ trace_arg $ jobs_arg)

let degree_cmd =
  let run file =
    let doc = load file in
    List.iter
      (fun (name, x) -> Printf.printf "%-25s %.4f\n" name x)
      (Measures.Degree.all doc.instance doc.schema doc.ics)
  in
  Cmd.v
    (Cmd.info "degree" ~doc:"Inconsistency measures of the instance.")
    Term.(const run $ file_arg)

let causes_cmd =
  let run file qname =
    let doc = load file in
    let q = query_of doc qname in
    let causes = Causality.Cause.actual_causes doc.instance doc.schema q in
    if causes = [] then print_endline "no causes (query false?)"
    else
      List.iter
        (fun (c : Causality.Cause.t) ->
          Format.printf "%a  %a  responsibility %.3f@." Relational.Tid.pp c.tid
            Relational.Fact.pp
            (Relational.Instance.fact_of doc.instance c.tid)
            c.responsibility)
        causes
  in
  Cmd.v
    (Cmd.info "causes"
       ~doc:"Actual causes and responsibilities for a Boolean query.")
    Term.(const run $ file_arg $ query_arg)

let count_cmd =
  let run file trace jobs =
    let doc = load file in
    let s, c =
      with_jobs jobs (fun () ->
          with_trace trace (fun () ->
              ( Repairs.Count.s_repairs doc.instance doc.schema doc.ics,
                Repairs.Count.c_repairs doc.instance doc.schema doc.ics )))
    in
    Printf.printf "S-repairs: %d\n" s;
    Printf.printf "C-repairs: %d\n" c
  in
  Cmd.v
    (Cmd.info "count" ~doc:"Count the repairs without materializing them all.")
    Term.(const run $ file_arg $ trace_arg $ jobs_arg)

let attr_repairs_cmd =
  let run file =
    let doc = load file in
    let repairs = Repairs.Attr_repair.enumerate doc.instance doc.schema doc.ics in
    Printf.printf "%d attribute repair(s)\n" (List.length repairs);
    List.iteri
      (fun i (r : Repairs.Attr_repair.t) ->
        Format.printf "repair %d: %a@." (i + 1) Repairs.Attr_repair.pp r)
      repairs
  in
  Cmd.v
    (Cmd.info "attr-repairs"
       ~doc:"Attribute-level NULL repairs (denial-class constraints).")
    Term.(const run $ file_arg)

let aggregate_cmd =
  let agg_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "agg" ] ~docv:"AGG"
          ~doc:"Aggregate: count, or sum:ATTR / min:ATTR / max:ATTR.")
  in
  let rel_arg =
    Arg.(required & opt (some string) None & info [ "rel" ] ~docv:"REL" ~doc:"Relation.")
  in
  let run file rel agg_spec =
    let doc = load file in
    let agg =
      match String.split_on_char ':' agg_spec with
      | [ "count" ] -> Repairs.Aggregate.Count_all
      | [ kind; attr ] -> (
          let pos =
            try Relational.Schema.attribute_index doc.schema ~rel ~attr
            with Not_found ->
              Printf.eprintf "unknown attribute %s of %s\n" attr rel;
              exit 2
          in
          match kind with
          | "sum" -> Repairs.Aggregate.Sum pos
          | "min" -> Repairs.Aggregate.Min pos
          | "max" -> Repairs.Aggregate.Max pos
          | _ ->
              Printf.eprintf "unknown aggregate %s\n" kind;
              exit 2)
      | _ ->
          Printf.eprintf "malformed aggregate %s\n" agg_spec;
          exit 2
    in
    let r = Repairs.Aggregate.range doc.instance doc.schema doc.ics ~rel agg in
    Printf.printf "glb %g\nlub %g\n" r.Repairs.Aggregate.glb r.Repairs.Aggregate.lub
  in
  Cmd.v
    (Cmd.info "aggregate"
       ~doc:"Range-consistent answer of an aggregate over all repairs.")
    Term.(const run $ file_arg $ rel_arg $ agg_arg)

let clean_cmd =
  let run file =
    let doc = load file in
    let result = Cleaning.Cost_clean.clean doc.instance doc.schema doc.ics in
    Printf.printf "%d change(s)\n" result.Cleaning.Cost_clean.cost;
    List.iter
      (fun (c : Cleaning.Cost_clean.change) ->
        Format.printf "  %a: %a -> %a@." Relational.Tid.Cell.pp c.cell
          Relational.Value.pp c.old_value Relational.Value.pp c.new_value)
      result.Cleaning.Cost_clean.changes;
    Format.printf "cleaned:@.%a@." Relational.Instance.pp
      result.Cleaning.Cost_clean.cleaned
  in
  Cmd.v
    (Cmd.info "clean" ~doc:"One-shot cost-based cleaning (FDs, keys, CFDs).")
    Term.(const run $ file_arg)

let sample_cmd =
  let seed_arg =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")
  in
  let run file seed =
    let doc = load file in
    let r = Repairs.Operational.sample_repair ~seed doc.instance doc.schema doc.ics in
    Format.printf "%a@." Repairs.Repair.pp r
  in
  Cmd.v
    (Cmd.info "sample"
       ~doc:"One repair sampled by the operational repairing process.")
    Term.(const run $ file_arg $ seed_arg)

let approx_cmd =
  let samples_arg =
    Arg.(value & opt int 5 & info [ "samples" ] ~docv:"N" ~doc:"Sampled repairs.")
  in
  let run file qname samples =
    let doc = load file in
    let q = query_of doc qname in
    let b = Cqa.Approx.bounds ~samples (engine doc) q in
    print_endline "under-approximation (guaranteed consistent):";
    pp_rows b.Cqa.Approx.under;
    print_endline "over-approximation (superset of consistent):";
    pp_rows b.Cqa.Approx.over;
    Printf.printf "interval closed: %b\n" b.Cqa.Approx.exact
  in
  Cmd.v
    (Cmd.info "approx"
       ~doc:"Polynomial-time bounds bracketing the consistent answers.")
    Term.(const run $ file_arg $ query_arg $ samples_arg)

let export_cmd =
  let rel_arg =
    Arg.(required & opt (some string) None & info [ "rel" ] ~docv:"REL" ~doc:"Relation.")
  in
  let run file rel =
    let doc = load file in
    print_string (Relational.Csv_io.to_csv doc.instance ~rel)
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export one relation as CSV on stdout.")
    Term.(const run $ file_arg $ rel_arg)

let analyze_cmd =
  let opt_query_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "query"; "q" ] ~docv:"NAME"
          ~doc:"Restrict the report to this query's classification.")
  in
  let run file qname =
    let doc = load file in
    match qname with
    | Some name -> (
        match Cqa.Analyze.query_lines doc name with
        | lines -> List.iter print_endline lines
        | exception Not_found ->
            Printf.eprintf
              "no query named %s in the input (declare `query %s(...) :- ...`)\n"
              name name;
            exit 2)
    | None ->
        let report = Cqa.Analyze.document doc in
        List.iter print_endline (Cqa.Analyze.lines report);
        (* Error-severity findings fail the run: `cqa analyze` doubles as
           the CI lint gate over examples/. *)
        if Cqa.Analyze.has_errors report then exit 1
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Static analysis without touching data: constraint-set \
          conformance and structure (key/FD interaction, IND cycles, weak \
          acyclicity), lints of the compiled repair program, and the \
          Fuxman-Miller complexity classifier with the method=auto route \
          for every query.  Exits 1 on error-severity findings.")
    Term.(const run $ file_arg $ opt_query_arg)

let program_cmd =
  let run file =
    let doc = load file in
    let program = Repair_programs.Compile.repair_program doc.schema doc.ics in
    Format.printf "%% repair program (stable models = S-repairs)@.%a@."
      Asp.Syntax.pp program;
    let edb = Repair_programs.Compile.edb_of_instance doc.instance in
    let ground = Asp.Ground.ground program edb in
    Format.printf "@.%% grounding: %d atoms, %d rules@." ground.Asp.Ground.natoms
      (List.length ground.Asp.Ground.rules)
  in
  Cmd.v
    (Cmd.info "program"
       ~doc:"Print the compiled ASP repair program and its grounding size.")
    Term.(const run $ file_arg)

(* --- report: render a workload dump as markdown --------------------- *)

let report_cmd =
  let module J = Gate.Tiny_json in
  let stats_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"STATS.json"
          ~doc:
            "Workload dump written by `cqa_server --workload-dump` (or any \
             JSON with the same {workload, sampler} shape).")
  in
  let events_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "events" ] ~docv:"EVENTS.jsonl"
          ~doc:
            "The matching --events log; tail_trace/slow_query/anchor \
             records are summarized next to the statements store.")
  in
  let top_arg =
    Arg.(
      value
      & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"Fingerprints to list (by total wall).")
  in
  let num ?(default = 0.0) j key =
    Option.value ~default (Option.bind (J.member key j) J.to_num)
  in
  let int_of j key = int_of_float (num j key) in
  let str ?(default = "?") j key =
    Option.value ~default (Option.bind (J.member key j) J.to_str)
  in
  let list_of j key =
    Option.value ~default:[] (Option.bind (J.member key j) J.to_list)
  in
  let ms v = Printf.sprintf "%.2f" (v *. 1e3) in
  let pct v = Printf.sprintf "%.1f%%" (v *. 100.0) in
  (* A fingerprint inside a markdown table: escape the cell separator. *)
  let cell s =
    String.concat "\\|" (String.split_on_char '|' s)
  in
  let phases_text j =
    match J.member "phases" j with
    | Some (J.Obj kvs) when kvs <> [] ->
        String.concat ", "
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s %sms" k
                 (ms (Option.value ~default:0.0 (J.to_num v))))
             kvs)
    | _ -> "-"
  in
  let run stats_path events_path top =
    let root =
      match J.of_file stats_path with
      | v -> v
      | exception J.Parse_error (pos, msg) ->
          Printf.eprintf "cqa report: %s: byte %d: %s\n" stats_path pos msg;
          exit 2
      | exception Sys_error msg ->
          Printf.eprintf "cqa report: %s\n" msg;
          exit 2
    in
    let w =
      match J.member "workload" root with
      | Some w -> w
      | None -> root (* accept a bare Obs.Stats.to_json document too *)
    in
    let p = print_endline in
    p "# CQA workload report";
    p "";
    p (Printf.sprintf "Source: `%s`" stats_path);
    p "";
    p "## Totals";
    p "";
    let total = num w "total_wall_s" in
    let attributed = num w "attributed_wall_s" in
    p (Printf.sprintf "- requests recorded: %d" (int_of w "recorded"));
    p
      (Printf.sprintf "- total request wall: %s ms (%s attributed to %d live \
                       fingerprint entries; %d evicted)"
         (ms total)
         (if total > 0.0 then pct (attributed /. total) else "100.0%")
         (List.length (list_of w "entries"))
         (int_of w "evicted"));
    p "";
    p (Printf.sprintf "## Top %d fingerprints (by total wall)" top);
    p "";
    p "| # | wall ms | calls | mean ms | p95 ms | cache h/m | rows | branch | fingerprint |";
    p "|---|---------|-------|---------|--------|-----------|------|--------|-------------|";
    let entries = list_of w "entries" in
    List.iteri
      (fun i e ->
        if i < top then begin
          p
            (Printf.sprintf "| %d | %s | %d | %s | %s | %d/%d | %d | %s | `%s` |"
               (i + 1)
               (ms (num e "wall_s"))
               (int_of e "calls")
               (ms (num e "mean_s"))
               (ms (num e "p95_s"))
               (int_of e "cache_hits") (int_of e "cache_misses")
               (int_of e "rows") (str e "branch")
               (cell (str e "fingerprint")));
          if phases_text e <> "-" then
            p (Printf.sprintf "|   |  phases: %s | | | | | | | |" (phases_text e))
        end)
      entries;
    p "";
    p "## Plan-branch cost centers";
    p "";
    p "| branch | calls | wall ms | share | p95 ms | errors | phases |";
    p "|--------|-------|---------|-------|--------|--------|--------|";
    List.iter
      (fun b ->
        p
          (Printf.sprintf "| %s | %d | %s | %s | %s | %d | %s |" (str b "branch")
             (int_of b "calls")
             (ms (num b "wall_s"))
             (pct (num b "share"))
             (ms (num b "p95_s"))
             (int_of b "errors") (phases_text b)))
      (list_of w "branches");
    p "";
    (match J.member "sampler" root with
    | Some (J.Obj _ as s) ->
        p "## Tail-sampled traces";
        p "";
        p
          (Printf.sprintf
             "- ring: %d offered, %d retained, %d overwritten (capacity %d)"
             (int_of s "seen") (int_of s "kept") (int_of s "overwritten")
             (int_of s "capacity"));
        List.iter
          (fun r ->
            p
              (Printf.sprintf "- req %d `%s` %s ms — %s (%d spans)"
                 (int_of r "req") (str r "command")
                 (ms (num r "wall_s"))
                 (str r "reason") (int_of r "spans")))
          (list_of s "retained");
        p ""
    | _ -> ());
    (match events_path with
    | None -> ()
    | Some path ->
        let counts = Hashtbl.create 8 in
        let anchors = ref [] in
        In_channel.with_open_text path (fun ic ->
            try
              while true do
                match In_channel.input_line ic with
                | None -> raise Exit
                | Some line when String.trim line = "" -> ()
                | Some line -> (
                    match J.parse line with
                    | j ->
                        let ev = str ~default:"?" j "ev" in
                        Hashtbl.replace counts ev
                          (1
                          + Option.value ~default:0
                              (Hashtbl.find_opt counts ev));
                        if ev = "anchor" then anchors := j :: !anchors
                    | exception _ -> ())
              done
            with Exit -> ());
        p (Printf.sprintf "## Event log (`%s`)" path);
        p "";
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
        |> List.sort compare
        |> List.iter (fun (k, v) -> p (Printf.sprintf "- %s: %d" k v));
        List.iter
          (fun a ->
            p
              (Printf.sprintf "- anchor `%s`: wall_ms=%d at ts_us=%d"
                 (str ~default:"-" a "label")
                 (int_of a "wall_ms") (int_of a "ts_us")))
          (List.rev !anchors);
        p "")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Render a markdown workload report from a `cqa_server \
          --workload-dump` JSON file (fingerprint statements, plan-branch \
          cost centers, tail-sampled traces) and optionally the matching \
          --events JSONL log.")
    Term.(const run $ stats_arg $ events_arg $ top_arg)

(* --- client: speak the cqa-serve protocol to a running server ------- *)

let client_cmd =
  let unix_arg =
    Arg.(
      value
      & opt string "/tmp/cqa-serve.sock"
      & info [ "unix" ] ~docv:"PATH" ~doc:"Unix-domain socket of the server.")
  in
  let port_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "port" ] ~docv:"PORT"
          ~doc:"Connect to TCP 127.0.0.1:$(docv) instead of a Unix socket.")
  in
  let load_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "load" ] ~docv:"FILE"
          ~doc:"Load this document into --session before anything else.")
  in
  let session_arg =
    Arg.(
      value & opt string "default"
      & info [ "session" ] ~docv:"SID" ~doc:"Session id for --load.")
  in
  let exec_arg =
    Arg.(
      value & opt_all string []
      & info [ "e" ] ~docv:"CMD"
          ~doc:"Send this protocol command and print the response (may be \
                repeated); without -e, commands are read from stdin.")
  in
  let run unix_path port load session cmds =
    let addr =
      match port with
      | Some p -> Unix.ADDR_INET (Unix.inet_addr_loopback, p)
      | None -> Unix.ADDR_UNIX unix_path
    in
    let ic, oc =
      try Unix.open_connection addr with
      | Unix.Unix_error (e, _, _) ->
          Printf.eprintf "cannot connect: %s\n" (Unix.error_message e);
          exit 2
    in
    let send line =
      output_string oc line;
      output_char oc '\n';
      flush oc
    in
    (* Every response ends with a lone "." line. *)
    let print_response () =
      let rec go () =
        match input_line ic with
        | "." -> ()
        | line ->
            print_endline line;
            go ()
        | exception End_of_file ->
            prerr_endline "server closed the connection";
            exit 1
      in
      go ()
    in
    (match load with
    | None -> ()
    | Some file ->
        send (Printf.sprintf "LOAD %s" session);
        In_channel.with_open_text file (fun fic ->
            try
              while true do
                send (input_line fic)
              done
            with End_of_file -> ());
        send ".";
        print_response ());
    let one line =
      send line;
      (* LOAD from the terminal: forward document lines up to ".". *)
      if
        String.length (String.trim line) >= 4
        && String.uppercase_ascii (String.sub (String.trim line) 0 4) = "LOAD"
      then (
        try
          let rec payload () =
            let l = input_line stdin in
            send l;
            if String.trim l <> "." then payload ()
          in
          payload ()
        with End_of_file -> send ".");
      print_response ()
    in
    if cmds <> [] then List.iter one cmds
    else (
      try
        while true do
          one (input_line stdin)
        done
      with End_of_file -> ());
    (try
       send "QUIT";
       print_response ()
     with Sys_error _ -> ());
    close_out_noerr oc
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Talk to a running cqa_server: send protocol commands from -e or \
          stdin, print responses.")
    Term.(const run $ unix_arg $ port_arg $ load_arg $ session_arg $ exec_arg)

let main =
  Cmd.group
    (Cmd.info "cqa" ~version:"1.0.0"
       ~doc:"Database repairs and consistent query answering.")
    [
      check_cmd; repairs_cmd; answers_cmd; analyze_cmd; degree_cmd; causes_cmd;
      count_cmd; attr_repairs_cmd; aggregate_cmd; clean_cmd; sample_cmd;
      approx_cmd; export_cmd; program_cmd; client_cmd; report_cmd;
    ]

let () = exit (Cmd.eval main)
