(* Quickstart: the Employee database of the paper's Example 3.3.

   Build an inconsistent instance, look at its repairs, and ask for
   consistent answers through the unified engine.

     dune exec examples/quickstart.exe
*)

module Value = Relational.Value
module Schema = Relational.Schema
module Instance = Relational.Instance
open Logic

let () =
  (* 1. Declare a schema and load a (dirty) instance. *)
  let schema = Schema.of_list [ ("Employee", [ "name"; "salary" ]) ] in
  let db =
    Instance.of_rows schema
      [
        ( "Employee",
          [
            [ Value.str "page"; Value.int 5000 ];
            [ Value.str "page"; Value.int 8000 ];
            [ Value.str "smith"; Value.int 3000 ];
            [ Value.str "stowe"; Value.int 7000 ];
          ] );
      ]
  in

  (* 2. Declare the key constraint Name -> Salary and build an engine. *)
  let key = Constraints.Ic.key ~rel:"Employee" [ 0 ] in
  let engine = Cqa.Engine.create ~schema ~ics:[ key ] db in

  Format.printf "consistent? %b@." (Cqa.Engine.is_consistent engine);

  (* 3. The two repairs: delete one of page's salaries. *)
  List.iteri
    (fun i r -> Format.printf "repair %d:@.%a@." (i + 1) Repairs.Repair.pp r)
    (Cqa.Engine.s_repairs engine);

  (* 4. Consistent answers.  The full-tuple query loses page entirely; the
     name projection keeps page, because page is an employee in every
     repair. *)
  let full =
    Cq.make ~name:"full"
      [ Term.var "n"; Term.var "s" ]
      [ Atom.make "Employee" [ Term.var "n"; Term.var "s" ] ]
  in
  let names =
    Cq.make ~name:"names" [ Term.var "n" ]
      [ Atom.make "Employee" [ Term.var "n"; Term.var "s" ] ]
  in
  let show q =
    let rows = Cqa.Engine.consistent_answers engine q in
    Format.printf "consistent answers to %s:@." q.Cq.name;
    List.iter
      (fun row ->
        Format.printf "  %s@."
          (String.concat ", " (List.map Value.to_string row)))
      rows
  in
  show full;
  show names;

  (* 5. The same answers via every engine the library implements. *)
  List.iter
    (fun (label, method_) ->
      let rows = Cqa.Engine.consistent_answers ~method_ engine names in
      Format.printf "%-18s -> %d answer(s)@." label (List.length rows))
    [
      ("repair enumeration", `Repair_enumeration);
      ("key rewriting", `Key_rewriting);
      ("ASP (stable models)", `Asp);
    ];

  (* 6. How inconsistent was the database? *)
  Format.printf "inconsistency degree: %.3f@."
    (Cqa.Engine.inconsistency_degree engine)
