(* Entity resolution meets repairs (paper, Section 6): matching
   dependencies merge near-duplicate records, remaining key violations are
   repaired, and probabilistic signals clean what has a clear majority.

     dune exec examples/entity_resolution.exe
*)

module Schema = Relational.Schema
module Instance = Relational.Instance
module Value = Relational.Value
module Matching = Entity.Matching

let v = Value.str

let () =
  let schema = Schema.of_list [ ("Cust", [ "name"; "phone"; "address" ]) ] in
  let db =
    Instance.of_rows schema
      [
        ( "Cust",
          [
            [ v "John Doe"; v "555-1234"; v "12 Main St" ];
            [ v "Jon Doe"; v "555-1234"; v "12 Main Street" ];
            [ v "J. Doe"; v "555-1234"; v "Main St 12" ];
            [ v "Jane Roe"; v "555-9999"; v "1 Elm St" ];
          ] );
      ]
  in
  (* MD: same phone, similar name → same address. *)
  let md =
    {
      Matching.rel = "Cust";
      premise =
        [
          (1, Matching.equal_similarity);
          (0, Matching.edit_similarity ~max_distance:4);
        ];
      identify = [ 2 ];
    }
  in
  Format.printf "duplicate clusters: %d@."
    (List.length (Matching.clusters db [ md ]));

  let merged = Matching.chase ~policy:Matching.Prefer_longest db [ md ] in
  Format.printf "after the MD chase:@.%a@." Instance.pp merged;

  (* One record per phone number: matching feeds into key repairing. *)
  let key = Constraints.Ic.key ~rel:"Cust" [ 1 ] in
  let resolved = Matching.resolve_with_key ~policy:Matching.Prefer_longest db schema ~mds:[ md ] ~key in
  Format.printf "resolutions after key repair: %d@." (List.length resolved);

  (* Signal-based cleaning on a zip→city table with an outlier. *)
  let cschema = Schema.of_list [ ("City", [ "zip"; "city"; "street" ]) ] in
  let cdb =
    Instance.of_rows cschema
      [
        ( "City",
          [
            [ v "10001"; v "NYC"; v "a st" ];
            [ v "10001"; v "NYC"; v "b st" ];
            [ v "10001"; v "LA"; v "c st" ];
          ] );
      ]
  in
  let fd = Constraints.Ic.fd ~rel:"City" ~lhs:[ 0 ] ~rhs:[ 1 ] in
  let outcome = Cleaning.Signals.apply cdb cschema [ fd ] in
  Format.printf "@.signal cleaning:@.";
  List.iter
    (fun (s : Cleaning.Signals.suggestion) ->
      Format.printf "  %a: %a -> %a (confidence %.2f)@." Relational.Tid.Cell.pp
        s.cell Value.pp s.current Value.pp s.proposed s.confidence)
    outcome.Cleaning.Signals.applied;
  Format.printf "consistent after cleaning: %b@." outcome.Cleaning.Signals.consistent
