(* The survey's further developments around repairs (Sections 3.2, 4 and 8):
   counting repairs, range-consistent aggregation, prioritized repairs,
   operational (randomized) repairing, incremental maintenance under
   updates, and polynomial-time approximation of consistent answers.

     dune exec examples/advanced_repairs.exe
*)

module Value = Relational.Value
module Schema = Relational.Schema
module Instance = Relational.Instance
module Tid = Relational.Tid
module Fact = Relational.Fact

let () =
  (* A payroll with three conflicting key groups. *)
  let schema = Schema.of_list [ ("Pay", [ "emp"; "amount" ]) ] in
  let db =
    Instance.of_rows schema
      [
        ( "Pay",
          [
            [ Value.str "ann"; Value.int 10 ];
            [ Value.str "ann"; Value.int 12 ];
            [ Value.str "bob"; Value.int 7 ];
            [ Value.str "bob"; Value.int 9 ];
            [ Value.str "eve"; Value.int 5 ];
          ] );
      ]
  in
  let key = Constraints.Ic.key ~rel:"Pay" [ 0 ] in

  (* Counting without enumerating: 2 x 2 key blocks. *)
  Format.printf "number of S-repairs: %d@."
    (Repairs.Count.s_repairs db schema [ key ]);

  (* Range-consistent aggregation: the total payroll across all repairs. *)
  let sum = Repairs.Aggregate.range db schema [ key ] ~rel:"Pay" (Repairs.Aggregate.Sum 1) in
  Format.printf "SUM(amount) is consistently in [%g, %g]@."
    sum.Repairs.Aggregate.glb sum.Repairs.Aggregate.lub;

  (* Prioritized repairs: trust lower amounts (e.g. the older ledger). *)
  let amount tid = (Instance.fact_of db tid).Fact.row.(1) in
  let prefer_low t t' =
    let f = Instance.fact_of db t and f' = Instance.fact_of db t' in
    Value.equal f.Fact.row.(0) f'.Fact.row.(0)
    && Value.compare (amount t) (amount t') < 0
  in
  let optimal = Repairs.Prioritized.globally_optimal prefer_low db schema [ key ] in
  Format.printf "globally optimal repairs under 'prefer lower amount': %d@."
    (List.length optimal);
  List.iter
    (fun (r : Repairs.Repair.t) ->
      Format.printf "  kept: %s@."
        (String.concat ", "
           (List.map Fact.to_string (Instance.fact_list r.repaired))))
    optimal;

  (* Operational semantics: sample the repairing process and estimate
     answer probabilities. *)
  let q =
    Logic.Cq.make ~name:"pay"
      [ Logic.Term.var "E"; Logic.Term.var "A" ]
      [ Logic.Atom.make "Pay" [ Logic.Term.var "E"; Logic.Term.var "A" ] ]
  in
  Format.printf "@.operational answer probabilities:@.";
  List.iter
    (fun (row, p) ->
      Format.printf "  %-10s %.2f@."
        (String.concat "," (List.map Value.to_string row))
        p)
    (Repairs.Operational.answer_probability ~seed:1 ~samples:400 db schema [ key ] q);

  (* Approximation: bracket the consistent answers without enumerating. *)
  let engine = Cqa.Engine.create ~schema ~ics:[ key ] db in
  let b = Cqa.Approx.bounds ~samples:8 engine q in
  Format.printf "@.approximation: %d surely-consistent, %d possibly-consistent@."
    (List.length b.Cqa.Approx.under)
    (List.length b.Cqa.Approx.over);

  (* Incremental maintenance: updates arrive, conflicts are tracked without
     rescanning. *)
  let inc = Repairs.Incremental.create db schema [ key ] in
  let inc, _ = Repairs.Incremental.insert inc (Fact.make "Pay" [ Value.str "eve"; Value.int 6 ]) in
  Format.printf "@.after inserting Pay(eve, 6): %d conflict edge(s), %d repairs@."
    (List.length (Repairs.Incremental.graph inc).Constraints.Conflict_graph.edges)
    (List.length (Repairs.Incremental.s_repairs inc));
  let names =
    Repairs.Incremental.consistent_answers inc
      (Logic.Cq.make ~name:"who" [ Logic.Term.var "E" ]
         [ Logic.Atom.make "Pay" [ Logic.Term.var "E"; Logic.Term.var "A" ] ])
  in
  Format.printf "employees certain after the update: %s@."
    (String.concat ", " (List.map (fun r -> Value.to_string (List.hd r)) names))
