(* Virtual data integration (paper, Section 5, Examples 5.1-5.2): two
   university sources mediated under GAV; a global functional dependency
   that no source can be asked to enforce is applied at query time via CQA.

     dune exec examples/university_integration.exe
*)

module Value = Relational.Value
module Schema = Relational.Schema
module Fact = Relational.Fact
open Logic

let v = Value.str
let fact rel values = Fact.make rel (List.map v values)

let () =
  (* The mediator's global schema and the GAV view definitions (8)-(9). *)
  let global_schema =
    Schema.of_list [ ("Stds", [ "number"; "name"; "univ"; "field" ]) ]
  in
  let x = Term.var "X" and y = Term.var "Y" and z = Term.var "Z" in
  let gav =
    Integration.Gav.make global_schema
      [
        Datalog.Rule.make
          (Atom.make "Stds" [ x; y; Term.str "cu"; z ])
          [ Atom.make "CUstds" [ x; y ]; Atom.make "SpecCU" [ x; z ] ];
        Datalog.Rule.make
          (Atom.make "Stds" [ x; y; Term.str "ou"; z ])
          [ Atom.make "OUstds" [ x; y ]; Atom.make "SpecOU" [ x; z ] ];
      ]
  in

  (* Example 5.2's sources: number 101 names john at Carleton but sue at
     Ottawa. *)
  let sources =
    [
      fact "CUstds" [ "101"; "john" ];
      fact "CUstds" [ "102"; "mary" ];
      fact "SpecCU" [ "101"; "alg" ];
      fact "SpecCU" [ "102"; "ai" ];
      fact "OUstds" [ "103"; "claire" ];
      fact "OUstds" [ "104"; "peter" ];
      fact "OUstds" [ "101"; "sue" ];
      fact "SpecOU" [ "103"; "db" ];
      fact "SpecOU" [ "101"; "bio" ];
    ]
  in

  let retrieved = Integration.Gav.retrieved_instance gav sources in
  Format.printf "retrieved global instance:@.%a@." Relational.Instance.pp
    retrieved;

  (* The global FD Number -> Name cannot be checked at the sources (each is
     locally consistent) and the mediator cannot update them. *)
  let global_fd = Constraints.Ic.fd ~rel:"Stds" ~lhs:[ 0 ] ~rhs:[ 1 ] in
  Format.printf "global FD holds? %b@."
    (Constraints.Ic.holds retrieved global_schema global_fd);

  (* Query: student numbers and names.  Plain GAV answering leaks both
     names for 101; CQA keeps only what every virtual repair agrees on. *)
  let q =
    Cq.make ~name:"students"
      [ Term.var "N"; Term.var "M" ]
      [ Atom.make "Stds" [ Term.var "N"; Term.var "M"; Term.var "U"; Term.var "F" ] ]
  in
  let show label rows =
    Format.printf "%s:@." label;
    List.iter
      (fun row ->
        Format.printf "  %s@."
          (String.concat ", " (List.map Value.to_string row)))
      rows
  in
  show "plain global answers" (Integration.Gav.answer gav sources q);
  List.iter
    (fun (label, engine) ->
      show
        (Printf.sprintf "consistent global answers (%s)" label)
        (Integration.Global_cqa.consistent_answers ~engine gav ~sources
           ~ics:[ global_fd ] q))
    [ ("repair enumeration", `Repair_enumeration); ("ASP", `Asp) ];

  (* LAV view of the same data: CUstds as a view over Stds; field values
     are unknown at the source, so they come back as labeled nulls and are
     filtered from certain answers. *)
  let lav =
    Integration.Lav.make global_schema
      [
        {
          Integration.Lav.source = "CUstds";
          head_vars = [ "n"; "m" ];
          body =
            [
              Atom.make "Stds"
                [ Term.var "n"; Term.var "m"; Term.str "cu"; Term.var "f" ];
            ];
        };
      ]
  in
  let cu_only = [ fact "CUstds" [ "101"; "john" ]; fact "CUstds" [ "102"; "mary" ] ] in
  show "LAV certain answers (numbers, names)"
    (Integration.Lav.certain_answers lav cu_only q)
