(* Temporal CQA and numerical repairs (paper, Sections 4 and 8): an audit
   over a payroll history with an atemporal key constraint, plus balancing
   a numeric ledger under aggregate constraints.

     dune exec examples/temporal_ledger.exe
*)

module Schema = Relational.Schema
module Instance = Relational.Instance
module Value = Relational.Value
module Fact = Relational.Fact
open Logic

let v = Value.str

let () =
  (* A payroll history: the key Name -> Salary must hold at every month. *)
  let schema = Schema.of_list [ ("Payroll", [ "name"; "salary" ]) ] in
  let key = Constraints.Ic.key ~rel:"Payroll" [ 0 ] in
  let pay name s = Fact.make "Payroll" [ v name; Value.int s ] in
  let history =
    Temporal.of_facts schema [ key ]
      [
        (1, pay "ann" 10); (1, pay "bob" 7);
        (* month 2: two records for ann — a botched migration *)
        (2, pay "ann" 10); (2, pay "ann" 12); (2, pay "bob" 7);
        (3, pay "ann" 12); (3, pay "bob" 7);
      ]
  in
  Format.printf "inconsistent months: %s@."
    (String.concat ", " (List.map string_of_int (Temporal.inconsistent_times history)));

  let q_full =
    Cq.make ~name:"pay" [ Term.var "N"; Term.var "S" ]
      [ Atom.make "Payroll" [ Term.var "N"; Term.var "S" ] ]
  in
  let show label rows =
    Format.printf "%s: %s@." label
      (String.concat "; "
         (List.map (fun r -> String.concat "," (List.map Value.to_string r)) rows))
  in
  show "certain at month 2" (Temporal.consistent_at history ~time:2 q_full);
  show "always certain (1..3)"
    (Temporal.consistent_always history ~from_:1 ~until:3 q_full);
  show "sometime certain (1..3)"
    (Temporal.consistent_sometime history ~from_:1 ~until:3 q_full);

  (* A numeric ledger that must balance to 100 with entries in [0, 60]. *)
  Format.printf "@.numeric ledger repair:@.";
  let lschema = Schema.of_list [ ("Ledger", [ "entry"; "amount" ]) ] in
  let ledger =
    Instance.of_rows lschema
      [
        ( "Ledger",
          [
            [ v "rent"; Value.Real 70.0 ];
            [ v "food"; Value.Real 25.0 ];
            [ v "misc"; Value.Real 30.0 ];
          ] );
      ]
  in
  let constraints =
    [
      Numeric.Numeric_repair.Row_bounds
        { rel = "Ledger"; pos = 1; lower = Some 0.0; upper = Some 60.0 };
      Numeric.Numeric_repair.Sum_eq { rel = "Ledger"; pos = 1; total = 100.0 };
    ]
  in
  List.iter
    (fun (_, m) -> Format.printf "  violation magnitude %.1f@." m)
    (Numeric.Numeric_repair.violations ledger constraints);
  let r = Numeric.Numeric_repair.repair ledger constraints in
  List.iter
    (fun (c : Numeric.Numeric_repair.change) ->
      Format.printf "  %a: %.1f -> %.1f@." Relational.Tid.Cell.pp
        c.cell c.old_value c.new_value)
    r.Numeric.Numeric_repair.changes;
  Format.printf "  total L1 cost %.1f; consistent: %b@."
    r.Numeric.Numeric_repair.l1_cost
    (Numeric.Numeric_repair.is_consistent r.Numeric.Numeric_repair.repaired
       constraints);

  (* Export the repaired ledger as CSV. *)
  Format.printf "@.repaired ledger (CSV):@.%s"
    (Relational.Csv_io.to_csv r.Numeric.Numeric_repair.repaired ~rel:"Ledger")
