(* Data cleaning with conditional functional dependencies (paper, Section
   6): quality answers, answer frequencies over the repair space, and
   one-shot cost-based cleaning.

     dune exec examples/data_cleaning.exe
*)

module Value = Relational.Value
module Schema = Relational.Schema
module Instance = Relational.Instance
open Logic

let v = Value.str
let i = Value.int

let () =
  (* The customer table of Section 6. *)
  let schema =
    Schema.of_list
      [ ("Cust", [ "cc"; "ac"; "phone"; "name"; "street"; "city"; "zip" ]) ]
  in
  let row cc ac ph nm st ct zp = [ i cc; i ac; v ph; v nm; v st; v ct; v zp ] in
  let db =
    Instance.of_rows schema
      [
        ( "Cust",
          [
            row 44 131 "1234567" "mike" "mayfield" "NYC" "EH4 8LE";
            row 44 131 "3456789" "rick" "crichton" "NYC" "EH4 8LE";
            row 01 908 "3456789" "joe" "mtn ave" "NYC" "07974";
          ] );
      ]
  in

  (* The plain FDs of the example hold... *)
  let fd1 = Constraints.Ic.fd ~rel:"Cust" ~lhs:[ 0; 1; 2 ] ~rhs:[ 4; 5; 6 ] in
  let fd2 = Constraints.Ic.fd ~rel:"Cust" ~lhs:[ 0; 1 ] ~rhs:[ 5 ] in
  Format.printf "plain FDs hold? %b %b@."
    (Constraints.Ic.holds db schema fd1)
    (Constraints.Ic.holds db schema fd2);

  (* ... but the CFD [CC=44, Zip] -> [Street] does not: UK zips determine
     the street, and mike and rick share EH4 8LE with different streets. *)
  let cfd =
    Constraints.Ic.cfd ~rel:"Cust" ~lhs:[ 0; 6 ] ~rhs:[ 4 ]
      ~pat:[ (0, Some (Value.int 44)); (6, None); (4, None) ]
  in
  Format.printf "CFD holds? %b@." (Constraints.Ic.holds db schema cfd);

  (* Quality answers: what is certain across all repairs of the CFD. *)
  let names =
    Cq.make ~name:"names" [ Term.var "N" ]
      [
        Atom.make "Cust"
          [
            Term.var "CC"; Term.var "AC"; Term.var "PH"; Term.var "N";
            Term.var "ST"; Term.var "CT"; Term.var "ZP";
          ];
      ]
  in
  let show label rows =
    Format.printf "%s: %s@." label
      (String.concat ", "
         (List.map (fun r -> String.concat "," (List.map Value.to_string r)) rows))
  in
  show "quality-certain names" (Cleaning.Quality.quality_answers db schema [ cfd ] names);

  Format.printf "answer frequencies:@.";
  List.iter
    (fun (row, freq) ->
      Format.printf "  %-6s %.2f@."
        (String.concat "," (List.map Value.to_string row))
        freq)
    (Cleaning.Quality.answer_frequencies db schema [ cfd ] names);

  (* One-shot heuristic cleaning: overwrite the less-supported street. *)
  let result = Cleaning.Cost_clean.clean db schema [ cfd ] in
  Format.printf "@.cost-based cleaning: %d change(s)@." result.Cleaning.Cost_clean.cost;
  List.iter
    (fun (c : Cleaning.Cost_clean.change) ->
      Format.printf "  %a: %a -> %a@." Relational.Tid.Cell.pp c.cell Value.pp
        c.old_value Value.pp c.new_value)
    result.Cleaning.Cost_clean.changes;
  Format.printf "cleaned instance consistent? %b@."
    (Constraints.Ic.all_hold result.Cleaning.Cost_clean.cleaned schema [ cfd ]);

  (* Inconsistency measures before and after. *)
  let report label inst =
    Format.printf "%s:@." label;
    List.iter
      (fun (name, x) -> Format.printf "  %-25s %.3f@." name x)
      (Measures.Degree.all inst schema [ cfd ])
  in
  report "measures (dirty)" db;
  report "measures (cleaned)" result.Cleaning.Cost_clean.cleaned
