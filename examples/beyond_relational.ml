(* The survey's Section 8 directions: peer data exchange, classical data
   exchange with exchange-repairs, inconsistency-tolerant ontologies, data
   warehouse dimensions, and probabilistic (dirty) databases.

     dune exec examples/beyond_relational.exe
*)

module Schema = Relational.Schema
module Instance = Relational.Instance
module Value = Relational.Value
module Fact = Relational.Fact
open Logic

let v = Value.str
let section title = Format.printf "@.=== %s ===@." title

let () =
  (* --- peers (Section 4.2) --- *)
  section "peer data exchange";
  let cat_schema = Schema.of_list [ ("CatPrice", [ "item"; "price" ]) ] in
  let store_schema = Schema.of_list [ ("Price", [ "item"; "price" ]) ] in
  let catalog =
    {
      Peers.Peer.name = "catalog";
      schema = cat_schema;
      instance =
        Instance.of_rows cat_schema
          [ ("CatPrice", [ [ v "I1"; Value.int 10 ]; [ v "I2"; Value.int 20 ] ]) ];
      ics = [];
      mappings = [];
    }
  in
  let store =
    {
      Peers.Peer.name = "store";
      schema = store_schema;
      instance =
        Instance.of_rows store_schema [ ("Price", [ [ v "I1"; Value.int 12 ] ]) ];
      ics = [ Constraints.Ic.key ~rel:"Price" [ 0 ] ];
      mappings =
        [
          {
            Peers.Peer.from_peer = "catalog";
            query =
              Cq.make [ Term.var "i"; Term.var "p" ]
                [ Atom.make "CatPrice" [ Term.var "i"; Term.var "p" ] ];
            target = "Price";
            trust = Peers.Peer.More_trusted;
          };
        ];
    }
  in
  let net = Peers.Peer.network [ catalog; store ] in
  let q =
    Cq.make [ Term.var "i"; Term.var "p" ]
      [ Atom.make "Price" [ Term.var "i"; Term.var "p" ] ]
  in
  Format.printf "store's consistent prices (catalog is more trusted):@.";
  List.iter
    (fun row ->
      Format.printf "  %s@." (String.concat ", " (List.map Value.to_string row)))
    (Peers.Peer.consistent_answers net "store" q);

  (* --- data exchange (Section 8) --- *)
  section "data exchange and exchange-repairs";
  let src_schema = Schema.of_list [ ("DeptMgr", [ "dept"; "mgr" ]) ] in
  let tgt_schema = Schema.of_list [ ("TDept", [ "dept"; "mgr" ]) ] in
  let d = Term.var "d" and m = Term.var "m" in
  let setting =
    {
      Exchange.source_schema = src_schema;
      target_schema = tgt_schema;
      st_tgds =
        [
          Exchange.st_tgd
            ~body:(Cq.make [ d; m ] [ Atom.make "DeptMgr" [ d; m ] ])
            ~head:[ Atom.make "TDept" [ d; m ] ];
        ];
      egds =
        [
          Exchange.egd
            ~body:
              [
                Atom.make "TDept" [ d; Term.var "m1" ];
                Atom.make "TDept" [ d; Term.var "m2" ];
              ]
            "m1" "m2";
        ];
      target_ics = [];
    }
  in
  let source =
    Instance.of_rows src_schema
      [ ("DeptMgr", [ [ v "cs"; v "carl" ]; [ v "cs"; v "dana" ]; [ v "math"; v "mia" ] ]) ]
  in
  (match Exchange.chase setting source with
  | Exchange.Failed reason -> Format.printf "chase fails: %s@." reason
  | Exchange.Solution _ -> Format.printf "chase unexpectedly succeeded@.");
  let certain =
    Exchange.exchange_repair_certain_answers setting source
      (Cq.make [ d; m ] [ Atom.make "TDept" [ d; m ] ])
  in
  Format.printf "certain over the exchange-repairs:@.";
  List.iter
    (fun row ->
      Format.printf "  %s@." (String.concat ", " (List.map Value.to_string row)))
    certain;

  (* --- ontologies (Section 8) --- *)
  section "inconsistency-tolerant ontology (AR / IAR / brave)";
  let open Ontology in
  let kb =
    make
      ~tbox:
        [
          Subsumed (Atomic "Prof", Atomic "Faculty");
          Disjoint (Atomic "Student", Atomic "Faculty");
        ]
      ~abox:
        [
          Concept_of ("Prof", "ann");
          Concept_of ("Student", "ann");
          Concept_of ("Student", "bob");
        ]
  in
  let q_student =
    Cq.make [ Term.var "x" ] [ Atom.make "Student" [ Term.var "x" ] ]
  in
  List.iter
    (fun (label, sem) ->
      let rows = answers kb sem q_student in
      Format.printf "%-6s students: %s@." label
        (String.concat ", " (List.map (fun r -> Value.to_string (List.hd r)) rows)))
    [ ("IAR", IAR); ("AR", AR); ("brave", Brave) ];

  (* --- dimensions (Section 8) --- *)
  section "data warehouse dimension repair";
  let open Dimensions.Dimension in
  let s =
    schema
      ~categories:[ "Product"; "Category"; "All" ]
      ~edges:[ ("Product", "Category"); ("Category", "All") ]
  in
  let dirty =
    {
      members =
        [ ("p1", "Product"); ("c1", "Category"); ("c2", "Category"); ("all", "All") ];
      links = [ ("p1", "c1"); ("p1", "c2"); ("c1", "all"); ("c2", "all") ];
    }
  in
  Format.printf "strict? %b (p1 is classified under two categories)@."
    (is_consistent s dirty);
  List.iter
    (fun r ->
      List.iter
        (fun c ->
          Format.printf "  repair: reclassify %s: %s -> %s@." c.from_elt
            (Option.value ~default:"(new)" c.old_parent)
            c.new_parent)
        r.changes)
    (repairs s dirty);

  (* --- probabilistic dirty databases (Section 6) --- *)
  section "clean answers over a dirty (probabilistic) database";
  let p = Workload.Paper.Employee.instance in
  let weight tid = if Relational.Tid.to_int tid = 1 then 3.0 else 1.0 in
  let dirty_db =
    Probdb.of_key_blocks ~weight p Workload.Paper.Employee.schema
      [ Workload.Paper.Employee.key ]
  in
  List.iter
    (fun (row, prob) ->
      Format.printf "  %-12s %.2f@."
        (String.concat "," (List.map Value.to_string row))
        prob)
    (Probdb.answer_probabilities dirty_db Workload.Paper.Employee.full_query);
  Format.printf "clean answers (p > 0.5): %d rows@."
    (List.length
       (Probdb.clean_answers dirty_db Workload.Paper.Employee.full_query))
