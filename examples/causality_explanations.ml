(* Causality as explanation (paper, Section 7, Examples 7.1-7.4): which
   tuples caused a query to be true, with what responsibility; the
   repair connection; attribute-level causes; and the effect of integrity
   constraints on causes.

     dune exec examples/causality_explanations.exe
*)

module Value = Relational.Value
module Schema = Relational.Schema
module Instance = Relational.Instance
module Tid = Relational.Tid
open Logic

let v = Value.str

let () =
  (* Example 3.5/7.1's database. *)
  let schema = Schema.of_list [ ("R", [ "a"; "b" ]); ("S", [ "a" ]) ] in
  let db =
    Instance.of_rows schema
      [
        ("R", [ [ v "a4"; v "a3" ]; [ v "a2"; v "a1" ]; [ v "a3"; v "a3" ] ]);
        ("S", [ [ v "a4" ]; [ v "a2" ]; [ v "a3" ] ]);
      ]
  in
  let x = Term.var "X" and y = Term.var "Y" in
  let q =
    Cq.make ~name:"Q" []
      [ Atom.make "S" [ x ]; Atom.make "R" [ x; y ]; Atom.make "S" [ y ] ]
  in
  Format.printf "Q holds? %b@." (Cq.holds q db);

  (* Tuple-level causes via the repair connection. *)
  Format.printf "@.actual causes (Example 7.1):@.";
  List.iter
    (fun (c : Causality.Cause.t) ->
      Format.printf "  %a %a  responsibility %.2f  (min contingency %d)@."
        Tid.pp c.tid Relational.Fact.pp
        (Instance.fact_of db c.tid)
        c.responsibility c.min_contingency_size)
    (Causality.Cause.actual_causes db schema q);

  (* The same through the ASP repair program (Example 7.2). *)
  Format.printf "@.via repair programs (Example 7.2):@.";
  List.iter
    (fun (tid, rho) ->
      Format.printf "  %a  responsibility %.2f@." Tid.pp tid rho)
    (Repair_programs.Cause_rules.responsibilities db schema q);
  Format.printf "CauCon pairs: %s@."
    (String.concat ", "
       (List.map
          (fun (a, b) -> Format.asprintf "(%a,%a)" Tid.pp a Tid.pp b)
          (Repair_programs.Cause_rules.cau_con_pairs db schema q)));

  (* Attribute-level causes (Example 7.3). *)
  Format.printf "@.attribute-level causes (Example 7.3):@.";
  List.iter
    (fun (c : Causality.Attr_cause.t) ->
      Format.printf "  %a  responsibility %.2f@." Tid.Cell.pp c.cell
        c.responsibility)
    (Causality.Attr_cause.actual_causes db schema q);

  (* Causality under ICs (Example 7.4). *)
  let schema2 =
    Schema.of_list
      [ ("Dep", [ "dname"; "tstaff" ]); ("Course", [ "cname"; "tstaff"; "dname" ]) ]
  in
  let db2 =
    Instance.of_rows schema2
      [
        ( "Dep",
          [
            [ v "Computing"; v "John" ];
            [ v "Philosophy"; v "Patrick" ];
            [ v "Math"; v "Kevin" ];
          ] );
        ( "Course",
          [
            [ v "COM08"; v "John"; v "Computing" ];
            [ v "Math01"; v "Kevin"; v "Math" ];
            [ v "HIST02"; v "Patrick"; v "Philosophy" ];
            [ v "Math08"; v "Eli"; v "Math" ];
            [ v "COM01"; v "John"; v "Computing" ];
          ] );
      ]
  in
  let psi = Constraints.Ic.ind ~sub:("Dep", [ 0; 1 ]) ~sup:("Course", [ 2; 1 ]) in
  let qa =
    Cq.make ~name:"QA" [ Term.var "X" ]
      [
        Atom.make "Dep" [ Term.var "Y"; Term.var "X" ];
        Atom.make "Course" [ Term.var "Z"; Term.var "X"; Term.var "Y" ];
      ]
  in
  let john = [ Value.str "John" ] in
  let report label ics =
    Format.printf "@.%s:@." label;
    List.iter
      (fun (c : Causality.Under_ics.t) ->
        Format.printf "  %a %a  responsibility %.3f@." Tid.pp c.tid
          Relational.Fact.pp
          (Instance.fact_of db2 c.tid)
          c.responsibility)
      (Causality.Under_ics.actual_causes db2 schema2 ~ics qa ~answer:john)
  in
  report "causes for John without constraints" [];
  report "causes for John under the inclusion dependency ψ" [ psi ]
