(* The paper's running supply-chain example (Examples 2.1, 2.2, 3.1, 4.3):
   an inclusion dependency from shipped items to the article catalogue,
   the residue-based rewriting that started CQA, and null-based repairs
   for the tgd variant.

     dune exec examples/supply_chain.exe
*)

module Value = Relational.Value
module Schema = Relational.Schema
module Instance = Relational.Instance
open Logic

let v = Value.str

let () =
  (* Example 2.1's instance: I3 is shipped but not catalogued. *)
  let schema =
    Schema.of_list
      [ ("Supply", [ "company"; "receiver"; "item" ]); ("Articles", [ "item" ]) ]
  in
  let db =
    Instance.of_rows schema
      [
        ( "Supply",
          [
            [ v "C1"; v "R1"; v "I1" ];
            [ v "C2"; v "R2"; v "I2" ];
            [ v "C2"; v "R1"; v "I3" ];
          ] );
        ("Articles", [ [ v "I1" ]; [ v "I2" ] ]);
      ]
  in
  let ind = Constraints.Ic.ind ~sub:("Supply", [ 2 ]) ~sup:("Articles", [ 0 ]) in
  Format.printf "ID satisfied? %b@." (Constraints.Ic.holds db schema ind);

  (* The query Q(z): what items are supplied?  Dirty answers include I3. *)
  let q =
    Cq.make ~name:"items" [ Term.var "Z" ]
      [ Atom.make "Supply" [ Term.var "X"; Term.var "Y"; Term.var "Z" ] ]
  in
  let show label rows =
    Format.printf "%s: %s@." label
      (String.concat ", "
         (List.map (fun r -> String.concat "," (List.map Value.to_string r)) rows))
  in
  show "plain answers" (Cq.answers q db);

  (* Example 2.2: the residue rewriting appends Articles(z); evaluated on
     the dirty instance it returns exactly the consistent answers. *)
  let rewritten = Rewriting.Residue_rewrite.rewrite_ics q schema [ ind ] in
  Format.printf "rewritten query: %a@." Formula.pp rewritten;
  show "consistent answers (rewriting)"
    (Rewriting.Residue_rewrite.consistent_answers q schema [ ind ] db);

  (* Example 3.1: the two S-repairs — delete the dangling tuple, or insert
     the missing article. *)
  List.iteri
    (fun i r -> Format.printf "repair %d:@.%a@." (i + 1) Repairs.Repair.pp r)
    (Repairs.S_repair.enumerate db schema [ ind ]);

  (* Example 4.3: with a cost attribute, the tgd acquires an existential
     variable and the insertion repair pads it with NULL. *)
  let schema' =
    Schema.of_list
      [
        ("Supply", [ "company"; "receiver"; "item" ]);
        ("Articles", [ "item"; "cost" ]);
      ]
  in
  let db' =
    Instance.of_rows schema'
      [
        ( "Supply",
          [
            [ v "C1"; v "R1"; v "I1" ];
            [ v "C2"; v "R2"; v "I2" ];
            [ v "C2"; v "R1"; v "I3" ];
          ] );
        ("Articles", [ [ v "I1"; Value.int 50 ]; [ v "I2"; Value.int 30 ] ]);
      ]
  in
  let tgd = Constraints.Ic.ind ~sub:("Supply", [ 2 ]) ~sup:("Articles", [ 0 ]) in
  Format.printf "@.tgd variant (Example 4.3):@.";
  List.iteri
    (fun i r -> Format.printf "repair %d:@.%a@." (i + 1) Repairs.Repair.pp r)
    (Repairs.S_repair.enumerate db' schema' [ tgd ]);

  (* Consistent answers intersect over both repairs: the deletion repair
     loses I3, so only I1 and I2 are consistent. *)
  let engine = Cqa.Engine.create ~schema:schema' ~ics:[ tgd ] db' in
  show "consistent items (repair enumeration)"
    (Cqa.Engine.consistent_answers ~method_:`Repair_enumeration engine q)
